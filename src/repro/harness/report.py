"""Plain-text table rendering for the harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A rendered experiment table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append([_fmt(c) for c in cells])


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN -> not measured / not applicable
            return "-"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        if abs(cell) >= 0.1:
            return f"{cell:.2f}"
        return f"{cell:.2e}"
    return str(cell)


def format_table(table: Table) -> str:
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells, pad=" "):
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    out = [table.title, "=" * len(table.title),
           line(table.headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in table.rows)
    for note in table.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)
