"""Asyncio front end: in-flight coalescing and weighted-fair admission.

The threaded front end (:mod:`repro.service.api`) holds one OS thread per
in-flight connection and executes every admitted job, even when an
identical one is already running.  This module replaces the *front* of
the service with a single-threaded asyncio server while keeping the
execution core -- ``BenchService``/``Scheduler``/``TeamPool`` -- exactly
as it is, bridged through the event loop's default thread pool for the
few short blocking calls (``submit``, ``status``, ``drain``).  Waiting,
which is what clients mostly do, is fully event-driven: a dispatcher
thread finishing a job wakes the loop once
(``call_soon_threadsafe``), and the loop fans the result out to every
connection that was parked on an ``asyncio.Future``.

Three capabilities ride on the async front:

**In-flight coalescing.**  A registry keyed by the spec's routing key
(:func:`repro.service.jobs.routing_key` -- within one daemon the
environment is pinned, so equal routing keys partition submissions
exactly like equal fingerprints) tracks every cache-eligible job between
admission and its terminal state.  A second identical request attaches
an ``asyncio.Future`` to the registered entry instead of re-queueing;
when the primary completes, one result fans out to all attached waiters.
Waiter responses carry ``coalesced_with: <primary job_id>`` (also
stamped into the run record -- schema v6), and each attachment increments
the ``dedup.coalesced`` counter in ``/status``.  Requests with
``no_cache`` asked for a private execution and never coalesce, in either
direction.  The registry entry dies with the job: a request arriving
*after* completion is the fingerprint cache's business, not ours --
coalescing handles the window the cache cannot (identical work in
flight), and the cache handles everything after.

**Idempotency keys.**  ``Idempotency-Key: <key>`` (shorthand for the
body's ``job_key``) makes POST /jobs replay-safe: a repeated key returns
the originally-admitted job, whatever state it has reached.  Replays are
recognized *before* fair admission -- they add no work, so they must not
consume quota -- which layers the three identity mechanisms as: job_key
(client-chosen, survives completion) over in-flight registry (identity
of running work) over fingerprint cache (identity of finished results).

**Weighted-fair multi-tenant admission.**  Requests carry a tenant id
(``X-NPB-Tenant`` header or body ``tenant``).  New work passes through
:class:`FairAdmission` -- deficit round robin over per-tenant FIFO
queues -- before reaching ``BenchService.submit``, so one hot tenant
saturates its own queue (structured 429 with the tenant named) instead
of the fleet.  The admission window (grants outstanding until their jobs
go terminal) is what creates the backlog DRR needs: without it a burst
would race straight into the service queue in arrival order.  PR 5's
bounded-queue/429 backpressure stays the outermost layer underneath.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque

from repro.obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.service.api import (
    RETRY_AFTER_SECONDS,
    BenchService,
    begin_submit_trace,
    job_trace_response,
)
from repro.service.jobs import AdmissionRejected, Job, routing_key

#: Hard cap on one HTTP request's header section + body (1 MiB): a job
#: submission is a small JSON object; anything bigger is abuse.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class TenantQuotaExceeded(AdmissionRejected):
    """One tenant's admission queue is full (structured 429).

    Subclasses :class:`AdmissionRejected` so every path that maps
    admission failures to 429s (including waiters coalesced onto a
    quota-bounced primary) treats it as backpressure, not a bad spec.
    """

    def __init__(self, tenant: str, pending: int, quota: int):
        super().__init__(
            f"tenant {tenant!r} admission queue full "
            f"({pending}/{quota}); back off and resubmit"
        )
        self.tenant = tenant
        self.pending = pending
        self.quota = quota


class FairAdmission:
    """Deficit-round-robin admission across per-tenant queues.

    ``acquire(tenant)`` parks the caller on a per-tenant FIFO until DRR
    grants it one of ``window`` outstanding slots; ``release()`` returns
    a slot (callers do this when the granted job reaches a terminal
    state).  Each DRR visit tops a tenant's deficit up by its weight and
    serves while the deficit covers a whole request, so over any
    contended interval tenant throughput is proportional to weight --
    with equal weights, a tenant offering 4x the load still completes
    ~half, which is the fairness contract the tests pin down.  A tenant
    with more than ``quota`` requests already parked is rejected
    immediately (:class:`TenantQuotaExceeded`) -- per-tenant
    backpressure, layered above the service queue's global bound.

    Single-threaded by construction: every method must be called on the
    event-loop thread.
    """

    def __init__(
        self,
        window: int = 4,
        quota: int = 64,
        default_weight: float = 1.0,
        weights: dict[str, float] | None = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if quota < 1:
            raise ValueError("quota must be >= 1")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )
        if default_weight <= 0:
            raise ValueError("default_weight must be > 0")
        self.window = window
        self.quota = quota
        self._default_weight = float(default_weight)
        self._weights = {t: float(w) for t, w in (weights or {}).items()}
        self._queues: dict[str, deque[asyncio.Future]] = {}
        self._deficits: dict[str, float] = {}
        #: round-robin visiting order of tenants with queued requests
        self._order: deque[str] = deque()
        self.in_flight = 0
        self.granted: dict[str, int] = {}
        self._closed = False
        #: tenant whose DRR visit the window cut short (resume it with
        #: its remaining deficit instead of topping up again)
        self._visiting: str | None = None

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self._default_weight)

    async def acquire(self, tenant: str | None) -> None:
        """Park until granted an admission slot (DRR order).

        Raises :class:`AdmissionRejected` when draining and
        :class:`TenantQuotaExceeded` when this tenant's queue is full.
        """
        key = tenant if tenant is not None else "-"
        if self._closed:
            raise AdmissionRejected("service is draining; not accepting new jobs")
        if self.in_flight < self.window and not self._order:
            # Uncontended: nobody is parked, so weighted ordering cannot
            # matter -- grant synchronously instead of parking a future
            # and paying a loop round-trip on every quiet-path request.
            self.in_flight += 1
            self.granted[key] = self.granted.get(key, 0) + 1
            return
        queue = self._queues.setdefault(key, deque())
        pending = sum(1 for fut in queue if not fut.done())
        if pending >= self.quota:
            raise TenantQuotaExceeded(key, pending, self.quota)
        fut = asyncio.get_running_loop().create_future()
        queue.append(fut)
        if key not in self._order:
            self._order.append(key)
        self._dispatch()
        try:
            await fut
        except asyncio.CancelledError:
            # A cancelled waiter that was already granted must give its
            # slot back; an ungranted one just leaves a done future the
            # dispatcher skips over.
            if fut.cancelled():
                raise
            self.release()
            raise

    def release(self) -> None:
        """Return one granted slot and hand it to the next in DRR order."""
        self.in_flight = max(0, self.in_flight - 1)
        self._dispatch()

    def close(self) -> AdmissionRejected:
        """Drain: reject every parked request and all future acquires."""
        self._closed = True
        exc = AdmissionRejected("service is draining; not accepting new jobs")
        for queue in self._queues.values():
            while queue:
                fut = queue.popleft()
                if not fut.done():
                    fut.set_exception(exc)
        self._order.clear()
        self._deficits.clear()
        self._visiting = None
        return exc

    def _dispatch(self) -> None:
        while self.in_flight < self.window and self._order:
            key = self._order[0]
            queue = self._queues.get(key)
            if queue:
                while queue and queue[0].done():
                    queue.popleft()
            if not queue:
                self._order.popleft()
                self._deficits.pop(key, None)
                self._queues.pop(key, None)
                if self._visiting == key:
                    self._visiting = None
                continue
            # DRR visit: top up by weight once per visit, serve whole
            # requests only.  A visit the *window* cut short (not the
            # deficit) resumes here with its remaining credit -- topping
            # up again would collapse weighted shares into plain round
            # robin whenever the window is small.
            if self._visiting != key:
                self._visiting = key
                self._deficits[key] = (
                    self._deficits.get(key, 0.0) + self.weight(key)
                )
            while (
                queue
                and self._deficits[key] >= 1.0
                and self.in_flight < self.window
            ):
                fut = queue.popleft()
                if fut.done():
                    continue
                self._deficits[key] -= 1.0
                self.in_flight += 1
                self.granted[key] = self.granted.get(key, 0) + 1
                fut.set_result(None)
            while queue and queue[0].done():
                queue.popleft()
            if queue and self._deficits[key] >= 1.0:
                # Mid-visit, window full: keep this tenant at the front.
                return
            self._visiting = None
            self._order.popleft()
            if queue:
                self._order.append(key)
            else:
                # Idle tenants forfeit their deficit: credit must not
                # accumulate while a tenant has nothing queued.
                self._deficits.pop(key, None)
                self._queues.pop(key, None)

    def stats(self) -> dict:
        return {
            "window": self.window,
            "quota": self.quota,
            "in_flight": self.in_flight,
            "queued": {
                tenant: sum(1 for f in queue if not f.done())
                for tenant, queue in self._queues.items()
                if queue
            },
            "granted": dict(self.granted),
            "weights": dict(self._weights),
        }


class _InflightEntry:
    """One cache-eligible job between admission and terminal state.

    ``admitted`` resolves to the :class:`Job` once ``service.submit``
    returns (or to its exception); ``done`` resolves to the same job in
    its terminal state -- done, failed, or cached alike, so a waiter on
    a failed primary gets the structured failure, never a hang.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self.admitted: asyncio.Future = loop.create_future()
        self.done: asyncio.Future = loop.create_future()
        # Exceptions fan out to waiters, but an entry may have none;
        # mark them observed so a waiterless failure does not warn.
        self.admitted.add_done_callback(_observe)
        self.done.add_done_callback(_observe)
        self.waiters = 0

    def fail(self, exc: BaseException) -> None:
        if not self.admitted.done():
            self.admitted.set_exception(exc)
        if not self.done.done():
            self.done.set_exception(exc)


def _observe(fut: asyncio.Future) -> None:
    if not fut.cancelled():
        fut.exception()


class AsyncFrontEnd:
    """The asyncio HTTP front end over one :class:`BenchService`.

    All mutable state (registry, watches, admission) is touched only on
    the event-loop thread; dispatcher threads reach it exclusively via
    ``call_soon_threadsafe`` from the service listener.
    """

    def __init__(
        self,
        service: BenchService,
        window: int | None = None,
        quota: int = 64,
        weights: dict[str, float] | None = None,
        verbose: bool = False,
    ):
        self.service = service
        self.admission = FairAdmission(
            window=window if window is not None else service.pool.size,
            quota=quota,
            weights=weights,
        )
        self.verbose = verbose
        self.draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        #: routing_key -> in-flight entry (cache-eligible jobs only)
        self._registry: dict[str, _InflightEntry] = {}
        #: job_id -> futures parked until that job is terminal
        self._watches: dict[str, list[asyncio.Future]] = {}
        self._listener_installed = False

    # ------------------------------------------------------------------ #
    # service bridge
    # ------------------------------------------------------------------ #

    def install(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind to the loop and start observing job state changes."""
        self._loop = loop
        if not self._listener_installed:
            self.service.add_listener(self._on_job_update)
            self._listener_installed = True

    def uninstall(self) -> None:
        if self._listener_installed:
            self.service.remove_listener(self._on_job_update)
            self._listener_installed = False

    def _on_job_update(self, job: Job) -> None:
        """Service listener -- runs on a dispatcher thread."""
        if job.terminal and self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._resolve_job, job)

    def _resolve_job(self, job: Job) -> None:
        """Loop thread: fan a terminal job out to every parked future."""
        for fut in self._watches.pop(job.job_id, []):
            if not fut.done():
                fut.set_result(job)

    def _watch_job(self, job: Job) -> asyncio.Future:
        """Future resolving to ``job`` once terminal (loop thread only)."""
        fut = asyncio.get_running_loop().create_future()
        self._watches.setdefault(job.job_id, []).append(fut)
        if job.terminal:
            # The listener may have fired before this watch registered.
            self._resolve_job(job)
        return fut

    async def _submit(self, payload: dict, trace=None) -> Job:
        """Admit one job on the loop thread.

        ``service.submit`` never blocks: it validates the spec, hashes
        the fingerprint, and enqueues under a briefly-held lock (a full
        queue *raises* rather than waiting).  Calling it inline saves
        two executor handoffs on the hottest path in the server; keep
        the coroutine shape so call sites read the same either way.
        """
        return self.service.submit(**payload, trace=trace)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    async def handle_post_jobs(self, headers: dict, body: bytes) -> tuple:
        """POST /jobs: replay -> coalesce -> fair-admit -> submit."""
        try:
            payload = json.loads(body or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            return 400, {"error": f"bad job spec: {exc}"}, {}
        wait = bool(payload.pop("wait", False))
        wait_timeout = payload.pop("wait_timeout", None)
        idem = headers.get("idempotency-key")
        if idem is not None and payload.get("job_key") is None:
            payload["job_key"] = idem
        header_tenant = headers.get("x-npb-tenant")
        if header_tenant is not None and payload.get("tenant") is None:
            payload["tenant"] = header_tenant
        span, ctx = begin_submit_trace(
            self.service, payload, headers.get("traceparent"), "async"
        )
        try:
            result = await self._admit(payload, wait, wait_timeout, ctx)
        except BaseException:
            if span is not None:
                span.end("error")
            raise
        if span is not None:
            code, response = result[0], result[1]
            if isinstance(response, dict) and response.get("job_id"):
                span.attrs["job_id"] = response["job_id"]
            span.end("error" if code >= 400 else "ok")
        return result

    async def _admit(
        self, payload: dict, wait: bool, wait_timeout, trace
    ) -> tuple:
        """The submit path behind the front-end span (see above)."""
        tenant = payload.get("tenant")

        # Layer 1: idempotency-key replay (no work, no quota).
        job_key = payload.get("job_key")
        if job_key is not None:
            existing = self.service.replay(job_key)
            if existing is not None:
                return await self._respond_job(existing, wait, wait_timeout)

        if self.draining:
            return self._rejected(
                AdmissionRejected("service is draining; not accepting new jobs")
            )

        # Layer 2: in-flight coalescing (attach, don't re-queue).  The
        # lookup and the placeholder insert happen with no await between
        # them: a twin arriving while this request is still parked at
        # admission (or inside the executor submit) finds the entry and
        # attaches instead of racing to a duplicate execution.
        eligible = not bool(payload.get("no_cache", False))
        key = routing_key(payload, self.service.default_kernel_backend)
        entry = None
        if eligible:
            existing_entry = self._registry.get(key)
            if existing_entry is not None:
                return await self._attach(
                    existing_entry, wait, wait_timeout, tenant
                )
            entry = _InflightEntry(asyncio.get_running_loop())
            self._registry[key] = entry

        # Layer 3: weighted-fair admission, then real submission.
        try:
            await self.admission.acquire(tenant)
        except TenantQuotaExceeded as exc:
            self._abort_entry(key, entry, exc)
            return (
                429,
                {
                    "error": str(exc),
                    "tenant": exc.tenant,
                    "pending": exc.pending,
                    "quota": exc.quota,
                },
                {"Retry-After": f"{RETRY_AFTER_SECONDS:g}"},
            )
        except AdmissionRejected as exc:
            self._abort_entry(key, entry, exc)
            return self._rejected(exc)

        try:
            job = await self._submit(payload, trace)
        except AdmissionRejected as exc:
            self._abort_entry(key, entry, exc)
            self.admission.release()
            return self._rejected(exc)
        except (TypeError, ValueError) as exc:
            self._abort_entry(key, entry, exc)
            self.admission.release()
            return 400, {"error": f"bad job spec: {exc}"}, {}
        except Exception as exc:
            self._abort_entry(key, entry, exc)
            self.admission.release()
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

        done = self._watch_job(job)
        done.add_done_callback(lambda _f: self._retire(key, entry))
        if entry is not None:
            entry.admitted.set_result(job)
            if not entry.done.done():

                def _forward(fut: asyncio.Future, entry=entry) -> None:
                    if not entry.done.done() and not fut.cancelled():
                        entry.done.set_result(fut.result())

                done.add_done_callback(_forward)
        if wait:
            return await self._await_terminal(job, done, wait_timeout)
        return 202, job.as_dict(), {}

    def _retire(self, key: str, entry: _InflightEntry | None) -> None:
        """Terminal job: free its admission slot and registry entry."""
        self.admission.release()
        if entry is not None and self._registry.get(key) is entry:
            del self._registry[key]

    def _abort_entry(
        self, key: str, entry: _InflightEntry | None, exc: BaseException
    ) -> None:
        if entry is None:
            return
        if self._registry.get(key) is entry:
            del self._registry[key]
        entry.fail(exc)

    def _rejected(self, exc: AdmissionRejected) -> tuple:
        return (
            429,
            {
                "error": str(exc),
                "depth": getattr(exc, "depth", 0),
                "capacity": getattr(exc, "capacity", 0),
            },
            {"Retry-After": f"{RETRY_AFTER_SECONDS:g}"},
        )

    async def _attach(
        self,
        entry: _InflightEntry,
        wait: bool,
        wait_timeout,
        tenant: str | None = None,
    ) -> tuple:
        """Coalesce onto an in-flight entry instead of re-queueing.

        ``asyncio.shield`` is what keeps a waiter's disconnect from
        cancelling the shared job: cancellation kills this coroutine,
        never the entry's futures.
        """
        entry.waiters += 1
        self.service.note_coalesced()
        try:
            primary: Job = await asyncio.shield(entry.admitted)
        except AdmissionRejected as exc:
            return self._rejected(exc)
        except Exception as exc:
            return 400, {"error": f"bad job spec: {exc}"}, {}
        if not wait:
            body = primary.as_dict()
            body["coalesced_with"] = primary.job_id
            return 202, body, {}
        try:
            terminal: Job = await self._shielded_wait(entry.done, wait_timeout)
        except TimeoutError as exc:
            return 504, {"error": str(exc), "job": primary.as_dict()}, {}
        except AdmissionRejected as exc:
            return self._rejected(exc)
        body = terminal.as_dict()
        body["coalesced_with"] = primary.job_id
        if body.get("result") is not None:
            # The record is per-response provenance: this waiter's
            # tenant, coalesced onto the primary's computation.
            record = dict(body["result"])
            record["coalesced_with"] = primary.job_id
            record["tenant"] = None if tenant is None else str(tenant)
            body["result"] = record
        return 200, body, {}

    async def _shielded_wait(self, fut: asyncio.Future, timeout) -> Job:
        try:
            return await asyncio.wait_for(
                asyncio.shield(fut),
                None if timeout is None else float(timeout),
            )
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"job not terminal within {timeout}s"
            ) from None

    async def _await_terminal(
        self, job: Job, done: asyncio.Future, wait_timeout
    ) -> tuple:
        try:
            terminal = await self._shielded_wait(done, wait_timeout)
        except TimeoutError as exc:
            return 504, {"error": str(exc), "job": job.as_dict()}, {}
        return 200, terminal.as_dict(), {}

    async def _respond_job(self, job: Job, wait: bool, wait_timeout) -> tuple:
        """Respond with an already-known job (idempotent replay)."""
        if not wait:
            code = 200 if job.terminal else 202
            return code, job.as_dict(), {}
        done = self._watch_job(job)
        return await self._await_terminal(job, done, wait_timeout)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, version, headers, body = request
                keep_alive = self._keep_alive(version, headers)
                try:
                    code, payload, extra = await self._route(
                        method, target, headers, body
                    )
                except Exception as exc:  # defensive: never drop silently
                    code, payload, extra = (
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        {},
                    )
                self.service.note_http_response(code)
                self._write_response(writer, code, payload, extra, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            ValueError,
        ):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels idle keep-alive readers; close the
            # socket quietly rather than logging a phantom error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"malformed request line: {line!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
            if len(headers) > 256:
                raise ValueError("too many headers")
        length = int(headers.get("content-length") or 0)
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValueError(f"unreasonable content length {length}")
        body = await reader.readexactly(length) if length else b""
        return method, target, version, headers, body

    @staticmethod
    def _keep_alive(version: str, headers: dict) -> bool:
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    async def _route(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> tuple:
        service = self.service
        loop = asyncio.get_running_loop()
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "POST" and path == "/jobs":
            return await self.handle_post_jobs(headers, body)
        if method == "GET" and path == "/status":
            status = await loop.run_in_executor(None, service.status)
            status["frontend"] = {
                "mode": "async",
                "inflight": len(self._registry),
                "admission": self.admission.stats(),
            }
            return 200, status, {}
        if method == "GET" and path == "/metrics":
            return (
                200,
                service.metrics.render(),
                {"Content-Type": METRICS_CONTENT_TYPE},
            )
        if method == "GET" and path == "/jobs":
            jobs = await loop.run_in_executor(None, service.jobs)
            return 200, {"jobs": [job.as_dict() for job in jobs]}, {}
        if (
            method == "GET"
            and path.startswith("/jobs/")
            and path.endswith("/trace")
        ):
            job_id = path[len("/jobs/") : -len("/trace")]
            code, payload = job_trace_response(service, job_id)
            return code, payload, {}
        if method == "GET" and path.startswith("/jobs/"):
            job = service.job(path[len("/jobs/") :])
            if job is None:
                return 404, {"error": "unknown job"}, {}
            return 200, job.as_dict(), {}
        return 404, {"error": f"no such resource {target!r}"}, {}

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        code: int,
        payload: dict | str,
        extra_headers: dict | None,
        keep_alive: bool,
    ) -> None:
        headers = dict(extra_headers or {})
        if isinstance(payload, str):
            # preformatted body (the /metrics exposition text)
            body = payload.encode()
            content_type = headers.pop("Content-Type", "text/plain")
        else:
            body = (json.dumps(payload, indent=2) + "\n").encode()
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        if not keep_alive:
            lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def drain(self, timeout: float | None = 30.0) -> bool:
        """Stop admitting, finish admitted jobs, resolve every waiter."""
        self.draining = True
        self.admission.close()
        loop = asyncio.get_running_loop()
        clean = await loop.run_in_executor(
            None, lambda: self.service.drain(timeout)
        )
        # Admitted jobs are terminal now; their listeners have resolved
        # every watch.  Anything still parked belongs to a job the drain
        # lost -- fail it loudly rather than hang the connection.
        for job_id, futures in list(self._watches.items()):
            job = self.service.job(job_id)
            for fut in futures:
                if fut.done():
                    continue
                if job is not None and job.terminal:
                    fut.set_result(job)
                else:
                    fut.set_exception(
                        AdmissionRejected("service drained before completion")
                    )
            self._watches.pop(job_id, None)
        for key, entry in list(self._registry.items()):
            entry.fail(AdmissionRejected("service drained before completion"))
            self._registry.pop(key, None)
        return clean


async def serve_async(
    service: BenchService,
    host: str = "127.0.0.1",
    port: int = 0,
    window: int | None = None,
    quota: int = 64,
    weights: dict[str, float] | None = None,
    verbose: bool = False,
    announce=None,
    stop_event: asyncio.Event | None = None,
    drain_timeout: float | None = 30.0,
) -> bool:
    """Run the async front end until ``stop_event`` (or forever).

    ``announce(url)`` is called once the socket is bound -- the CLI
    prints the same ``listening on http://...`` line the threaded path
    does, so ``_spawn_shard`` scrapes async shards identically.
    Returns True when the drain was clean.
    """
    frontend = AsyncFrontEnd(
        service, window=window, quota=quota, weights=weights, verbose=verbose
    )
    loop = asyncio.get_running_loop()
    frontend.install(loop)
    server = await asyncio.start_server(
        frontend.handle_connection, host, port
    )
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    if announce is not None:
        announce(f"http://{bound_host}:{bound_port}")
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        server.close()
        await server.wait_closed()
        clean = await frontend.drain(drain_timeout)
        frontend.uninstall()
    return clean


class AsyncServerThread:
    """The async front end on a dedicated loop thread (tests, embedding).

    Mirrors the ergonomics of ``make_server`` + ``serve_forever`` for
    the threaded path: ``start()`` returns the bound URL, ``stop()``
    triggers the drain and joins the loop thread.
    """

    def __init__(self, service: BenchService, host: str = "127.0.0.1", **kwargs):
        self.service = service
        self.host = host
        self.kwargs = kwargs
        self.url: str | None = None
        self.clean: bool | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def _announce(url: str) -> None:
                self.url = url
                self._ready.set()

            try:
                self.clean = await serve_async(
                    self.service,
                    host=self.host,
                    announce=_announce,
                    stop_event=self._stop,
                    **self.kwargs,
                )
            finally:
                self._ready.set()

        asyncio.run(main())

    def start(self, timeout: float = 10.0) -> str:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout) or self.url is None:
            raise RuntimeError("async front end failed to start")
        return self.url

    def stop(self, timeout: float = 30.0) -> bool:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)
        return bool(self.clean)


def wait_for_port(url: str, timeout: float = 5.0) -> bool:
    """Poll until the daemon at ``url`` answers /status (tests, CI)."""
    from repro.service.api import ServiceClient, ServiceUnavailable

    client = ServiceClient(url, timeout=2.0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            code, _ = client.status()
            if code == 200:
                return True
        except ServiceUnavailable:
            time.sleep(0.05)
    return False
