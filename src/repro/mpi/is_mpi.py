"""IS over message passing: distributed key generation and ranking.

Each rank generates its contiguous block of the key stream by jumping the
LCG (4 draws per key), applies the iteration-dependent key modifications
to the blocks that own the modified global indices, histograms its own
keys, and the histogram is summed with an allreduce -- the communication
pattern of the NPB IS-MPI bucket code with the bucket exchange folded
into the dense-histogram reduction (value-identical, and exact for the
partial verification).
"""

from __future__ import annotations

import numpy as np

from repro.common.randdp import A_DEFAULT, Randlc
from repro.isort.params import (
    IS_SEED,
    MAX_ITERATIONS,
    TEST_ARRAY_SIZE,
    is_params,
)
from repro.mpi.comm import Communicator, mpi_run
from repro.team.partition import partition_bounds


def _local_keys(num_keys: int, max_key: int, lo: int, hi: int) -> np.ndarray:
    rng = Randlc(IS_SEED, A_DEFAULT)
    rng.skip(4 * lo)
    uniforms = rng.batch(4 * (hi - lo))
    sums = uniforms.reshape(hi - lo, 4).sum(axis=1)
    return ((max_key // 4) * sums).astype(np.int64)


def _rank_program(comm: Communicator, problem_class: str) -> int:
    params = is_params(problem_class)
    lo, hi = partition_bounds(params.num_keys, comm.size, comm.rank)
    keys = _local_keys(params.num_keys, params.max_key, lo, hi)

    passed = 0
    cumulative = None
    for iteration in range(1, MAX_ITERATIONS + 1):
        # iteration-dependent modifications at global indices
        for index, value in ((iteration, iteration),
                             (iteration + MAX_ITERATIONS,
                              params.max_key - iteration)):
            if lo <= index < hi:
                keys[index - lo] = value
        # spot values live on the owning ranks; share them
        spots = {}
        for i, index in enumerate(params.test_index):
            if lo <= index < hi:
                spots[i] = int(keys[index - lo])
        spots = comm.allreduce(spots, op=lambda a, b: {**a, **b})

        local_hist = np.bincount(keys, minlength=params.max_key)
        hist = comm.allreduce(local_hist, op=lambda a, b: a + b)
        cumulative = np.cumsum(hist)

        for i in range(TEST_ARRAY_SIZE):
            k = spots[i]
            if 0 < k <= params.num_keys - 1:
                rank_of_key = int(cumulative[k - 1])
                offset, sign = params.rank_adjust[i]
                expected = params.test_rank[i] + sign * (iteration + offset)
                if rank_of_key == expected:
                    passed += 1

    # full verification from the final histogram
    counts = np.diff(cumulative, prepend=0)
    if np.all(counts >= 0) and counts.sum() == params.num_keys:
        passed += 1
    return passed


def is_mpi_verify(problem_class: str = "S", nprocs: int = 4) -> bool:
    """True iff the distributed IS passes all 5*iters + 1 checks."""
    results = mpi_run(nprocs, _rank_program, problem_class)
    expected = TEST_ARRAY_SIZE * MAX_ITERATIONS + 1
    return all(r == expected for r in results)
