"""Benchmark-trajectory subsystem: ``npb bench`` records and comparator.

The source paper's contribution is a set of measured tables; this module
gives the reproduction the same discipline over time.  ``npb bench`` runs
a configurable set of *cells* -- ``(benchmark, class, backend, workers)``
whole-benchmark runs plus the Table-1 basic-operation kernels -- with
``--repeat N`` min-of-k timing (:mod:`repro.harness.stats`), stamps an
environment fingerprint, and appends a schema-versioned ``BENCH_<seq>.json``
record to the repository's perf trajectory.  Each benchmark cell carries
its per-region dispatch/execute/barrier split
(:mod:`repro.runtime.region`), so a regression can be localized to a phase
without rerunning anything.

``npb bench --compare BASELINE.json [CANDIDATE.json]`` matches cells
between two records and issues a noise-aware verdict per cell: a slowdown
is a *regression* only when it exceeds ``max(tolerance, k * MAD / best)``,
i.e. the configured tolerance or the measured run-to-run noise of the two
records, whichever is larger.  The command exits nonzero on any
regression, which is what lets CI gate on it (see docs/benchmarking.md).
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import time
from dataclasses import dataclass

import numpy as np

from repro import run_benchmark
from repro.core import basic_ops
from repro.harness import records
from repro.harness.stats import summarize, time_callable

#: Version of the BENCH_*.json record layout.
#: v2: benchmark cells carry ``faults`` (total fault events over the
#: cell's repeats) and ``fault_counts`` (events by kind); v1 records are
#: migrated on load with zero faults.
#: v3: benchmark-cell region dicts carry ``alloc_bytes``/``alloc_blocks``
#: (per-region allocation accounting; zeros unless the suite ran with
#: allocation tracing).  v1/v2 records are migrated on load with zeros.
#: v4: benchmark cells carry the job-service fields ``job_id``,
#: ``cache_hit`` and ``queue_wait_seconds`` (see :mod:`repro.service`);
#: direct ``npb bench`` runs record null/false/zero, and v1-v3 records
#: are migrated on load the same way (a recorded cell back then could
#: only have been a direct run).
#: v5: benchmark cells carry ``kernel_backend`` (the kernel tier; see
#: :mod:`repro.kernels.registry`).  v1-v4 records are migrated on load
#: with the historical default ``"fused"``, and a cell's ``cell_id``
#: only grows a ``.{tier}`` suffix for non-default tiers, so committed
#: baselines keep gating unchanged.
#: v6: benchmark cells carry ``tenant`` and ``coalesced_with`` (the
#: async-front-end provenance; see :mod:`repro.service.async_api`).
#: Direct ``npb bench`` runs record null for both, and v1-v5 records are
#: migrated on load the same way (no recorded cell predating the async
#: front end could have been tenant-tagged or coalesced).
SCHEMA_VERSION = 6

#: The ``kind`` tag every record carries (guards against loading foreign JSON).
RECORD_KIND = "npb-bench-record"

#: Trajectory file naming: BENCH_0001.json, BENCH_0002.json, ...
RECORD_PATTERN = re.compile(r"^BENCH_(\d{4})\.json$")

#: Relative slowdown tolerated before the noise term kicks in (10%).
DEFAULT_TOLERANCE = 0.10

#: ``k`` in the ``k * MAD / best`` noise band of the comparator.
DEFAULT_MAD_MULTIPLIER = 3.0

#: Absolute seconds a cell may slow down regardless of ratio: sub-10ms
#: cells (IS.S, the small kernels) jitter by whole scheduler quanta on a
#: busy host, so their *relative* band must widen with 1/best.
DEFAULT_ABS_SLACK = 0.005


# ===================================================================== #
# cells
# ===================================================================== #


@dataclass(frozen=True)
class BenchCell:
    """One whole-benchmark trajectory cell."""

    benchmark: str
    problem_class: str
    backend: str
    workers: int
    #: kernel tier the cell runs at (see :mod:`repro.kernels.registry`)
    kernel_backend: str = "fused"

    @property
    def cell_id(self) -> str:
        base = (
            f"{self.benchmark}.{self.problem_class}."
            f"{self.backend}.x{self.workers}"
        )
        # The default tier keeps the historical id so committed baselines
        # (BENCH_0001.json) gate unchanged; other tiers get distinct ids.
        if self.kernel_backend != "fused":
            return f"{base}.{self.kernel_backend}"
        return base

    @classmethod
    def parse(cls, spec: str) -> "BenchCell":
        """Parse a ``BENCH:CLASS:BACKEND:WORKERS[:TIER]`` spec
        (``CG:S:threads:2`` or ``CG:S:threads:2:compiled``)."""
        parts = spec.split(":")
        if len(parts) not in (4, 5):
            raise ValueError(
                f"cell spec {spec!r} is not "
                f"BENCHMARK:CLASS:BACKEND:WORKERS[:TIER]"
            )
        name, problem_class, backend, workers = parts[:4]
        tier = parts[4] if len(parts) == 5 else "fused"
        return cls(name.upper(), problem_class.upper(), backend,
                   int(workers), kernel_backend=tier)


@dataclass(frozen=True)
class KernelCell:
    """One Table-1 basic-operation trajectory cell."""

    op: str
    style: str
    grid: tuple[int, int, int]

    @property
    def cell_id(self) -> str:
        nx, ny, nz = self.grid
        return f"basic_op.{self.op}.{self.style}.{nx}x{ny}x{nz}"


#: Class-S cell set small enough for shared CI runners (``--quick``).
QUICK_CELLS: tuple[BenchCell, ...] = (
    BenchCell("CG", "S", "serial", 1),
    BenchCell("MG", "S", "serial", 1),
    BenchCell("IS", "S", "serial", 1),
    BenchCell("FT", "S", "serial", 1),
    BenchCell("CG", "S", "threads", 2),
    BenchCell("MG", "S", "threads", 2),
)

#: Default cell set: the full suite serially plus the paper's interesting
#: parallel cases (LU sync overhead under threads, EP under processes).
#: QUICK_CELLS is a subset, so a full baseline can gate quick CI runs.
FULL_CELLS: tuple[BenchCell, ...] = (
    BenchCell("BT", "S", "serial", 1),
    BenchCell("SP", "S", "serial", 1),
    BenchCell("LU", "S", "serial", 1),
    BenchCell("FT", "S", "serial", 1),
    BenchCell("MG", "S", "serial", 1),
    BenchCell("CG", "S", "serial", 1),
    BenchCell("IS", "S", "serial", 1),
    BenchCell("EP", "S", "serial", 1),
    BenchCell("CG", "S", "threads", 2),
    BenchCell("MG", "S", "threads", 2),
    BenchCell("FT", "S", "threads", 2),
    BenchCell("LU", "S", "threads", 2),
    BenchCell("EP", "S", "process", 2),
)

_QUICK_GRID = basic_ops.SMALL_GRID
_FULL_GRID = (24, 24, 30)


def _kernel_cells(style: str, grid: tuple[int, int, int]) -> tuple[KernelCell, ...]:
    return tuple(KernelCell(op, style, grid) for op in basic_ops.OPERATIONS)


#: Table-1 kernels for --quick: the NumPy (f77 role) style on the small grid.
QUICK_KERNELS: tuple[KernelCell, ...] = _kernel_cells("numpy", _QUICK_GRID)

#: Default kernels: both paper roles; the quick set is again a subset.
FULL_KERNELS: tuple[KernelCell, ...] = (
    QUICK_KERNELS
    + _kernel_cells("numpy", _FULL_GRID)
    + _kernel_cells("python", _QUICK_GRID)
)


# ===================================================================== #
# environment fingerprint
# ===================================================================== #


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_fingerprint() -> dict:
    """Stamp that makes two records comparable (or explains why not)."""
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "hostname": platform.node(),
        "git_sha": _git_sha(),
    }


# ===================================================================== #
# suite runner
# ===================================================================== #


def run_bench_cell(cell: BenchCell, repeat: int) -> dict:
    """Run one benchmark cell ``repeat`` times; keep the best run's detail."""
    results = []
    for _ in range(repeat):
        results.append(
            run_benchmark(
                cell.benchmark, cell.problem_class, cell.backend,
                cell.workers, kernel_backend=cell.kernel_backend,
            )
        )
    times = [r.time_seconds for r in results]
    summary = summarize(times)
    best = results[times.index(summary.best)]
    fault_counts: dict[str, int] = {}
    for result in results:
        for kind, count in result.fault_counts.items():
            fault_counts[kind] = fault_counts.get(kind, 0) + count
    record = {
        "id": cell.cell_id,
        "kind": "benchmark",
        "benchmark": cell.benchmark,
        "problem_class": cell.problem_class,
        "backend": cell.backend,
        "workers": cell.workers,
        "verified": all(r.verified for r in results),
        "mops": best.mops,
        "regions": {name: dict(stats) for name, stats in best.regions.items()},
        # fault-tolerance events summed over all repeats: a trajectory
        # cell that only stays fast because workers keep dying and
        # degrading to serial must not look healthy
        "faults": sum(fault_counts.values()),
        "fault_counts": fault_counts,
        # job-service fields (schema v4): bench cells are direct runs,
        # so they carry the same nulls a non-service `npb run` would
        "job_id": best.job_id,
        "cache_hit": best.cache_hit,
        "queue_wait_seconds": best.queue_wait_seconds,
        # kernel tier (schema v5): the *requested* tier; an unavailable
        # compiled tier records "compiled" while serving fallbacks
        "kernel_backend": cell.kernel_backend,
        # async-front-end provenance (schema v6): bench cells are direct
        # runs, never tenant-tagged and never coalesced
        "tenant": best.tenant,
        "coalesced_with": best.coalesced_with,
    }
    record.update(summary.as_dict())
    return record


def run_kernel_cell(cell: KernelCell, repeat: int) -> dict:
    """Time one Table-1 basic operation ``repeat`` times."""
    workload = basic_ops.make_workload(cell.grid)
    summary = time_callable(
        lambda: basic_ops.run_operation(cell.op, cell.style, workload),
        repeat=repeat,
    )
    record = {
        "id": cell.cell_id,
        "kind": "basic_op",
        "op": cell.op,
        "style": cell.style,
        "grid": list(cell.grid),
        "verified": True,
    }
    record.update(summary.as_dict())
    return record


def run_suite(
    cells=FULL_CELLS,
    kernels=FULL_KERNELS,
    repeat: int = 3,
    quick: bool = False,
    progress=None,
    trace_alloc: bool = False,
) -> dict:
    """Run the suite and return a schema-versioned trajectory record.

    With ``trace_alloc`` the suite runs under ``tracemalloc``, populating
    the per-region ``alloc_bytes``/``alloc_blocks`` fields.  Tracing slows
    every cell, so traced records must only be compared against other
    traced records (the flag is stamped into ``config``); CI's wall-time
    gate keeps tracing off.
    """
    import tracemalloc

    was_tracing = tracemalloc.is_tracing()
    if trace_alloc and not was_tracing:
        tracemalloc.start()
    try:
        measured = []
        for cell in tuple(cells) + tuple(kernels):
            if progress is not None:
                progress(f"  bench {cell.cell_id} (repeat {repeat})")
            if isinstance(cell, BenchCell):
                measured.append(run_bench_cell(cell, repeat))
            else:
                measured.append(run_kernel_cell(cell, repeat))
    finally:
        if trace_alloc and not was_tracing:
            tracemalloc.stop()
    return {
        "kind": RECORD_KIND,
        "schema_version": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": environment_fingerprint(),
        "config": {
            "repeat": repeat,
            "quick": quick,
            "trace_alloc": trace_alloc,
            "cells": [c.cell_id for c in cells],
            "kernels": [k.cell_id for k in kernels],
        },
        "cells": measured,
    }


# ===================================================================== #
# record IO (the BENCH_<seq>.json trajectory)
# ===================================================================== #


def next_sequence(directory: str = ".") -> int:
    """1 + the highest BENCH_<seq>.json already in ``directory``."""
    return records.next_sequence(directory, "BENCH")


def write_record(record: dict, directory: str = ".", path: str | None = None) -> str:
    """Write ``record``; default name continues the trajectory sequence.

    Sequence numbers are claimed atomically (``O_EXCL`` create-and-retry
    in :mod:`repro.harness.records`), so two runs appending to the same
    directory concurrently never overwrite each other's record.
    """
    if path is None:
        return records.append_record(record, directory, "BENCH")
    return records.write_json_record(record, path)


def _migrate_record(record: dict, version: int) -> dict:
    """Upgrade an older-schema record in memory (never rewritten on disk)."""
    if version < 2:
        # v1 predates fault tracking; a recorded run back then could not
        # have completed with faults, so zero is the faithful migration.
        for cell in record.get("cells", []):
            if cell.get("kind") == "benchmark":
                cell.setdefault("faults", 0)
                cell.setdefault("fault_counts", {})
    if version < 3:
        # v2 predates allocation accounting, which is opt-in anyway
        # (untraced runs record zeros), so zero is the faithful migration.
        for cell in record.get("cells", []):
            for stats in cell.get("regions", {}).values():
                stats.setdefault("alloc_bytes", 0)
                stats.setdefault("alloc_blocks", 0)
    if version < 4:
        # v3 predates the job service; every recorded cell was a direct
        # run, so null/false/zero is the faithful migration.
        for cell in record.get("cells", []):
            if cell.get("kind") == "benchmark":
                cell.setdefault("job_id", None)
                cell.setdefault("cache_hit", False)
                cell.setdefault("queue_wait_seconds", 0.0)
    if version < 5:
        # v4 predates kernel tiers; every recorded cell ran the fused
        # kernels (the tier that is now the default), so "fused" is the
        # faithful migration.
        for cell in record.get("cells", []):
            if cell.get("kind") == "benchmark":
                cell.setdefault("kernel_backend", "fused")
    if version < 6:
        # v5 predates the async front end; no recorded cell could have
        # been tenant-tagged or coalesced, so null is the faithful
        # migration for both.
        for cell in record.get("cells", []):
            if cell.get("kind") == "benchmark":
                cell.setdefault("tenant", None)
                cell.setdefault("coalesced_with", None)
    if version < SCHEMA_VERSION:
        record["schema_version"] = SCHEMA_VERSION
    return record


def load_record(path: str) -> dict:
    """Load and sanity-check one trajectory record.

    Records written by older schema versions are migrated in memory
    (missing fault fields default to zero); records from a *newer*
    schema are rejected.
    """
    with open(path) as fh:
        record = json.load(fh)
    if not isinstance(record, dict) or record.get("kind") != RECORD_KIND:
        raise ValueError(f"{path}: not an {RECORD_KIND} file")
    version = record.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} (this tool reads "
            f"<= {SCHEMA_VERSION}); refresh the record with 'npb bench'"
        )
    return _migrate_record(record, version)


# ===================================================================== #
# regression comparator
# ===================================================================== #


@dataclass(frozen=True)
class CellDelta:
    """Comparison of one cell between a baseline and a candidate record."""

    cell_id: str
    base_seconds: float
    cand_seconds: float
    threshold: float
    verdict: str  # "ok" | "regression" | "improved"

    @property
    def ratio(self) -> float:
        """candidate / baseline best time (> 1 means slower)."""
        return self.cand_seconds / max(self.base_seconds, 1e-12)


@dataclass(frozen=True)
class Comparison:
    """Full comparator output for one (baseline, candidate) pair."""

    deltas: tuple[CellDelta, ...]
    missing: tuple[str, ...]  # cells only in the baseline
    added: tuple[str, ...]  # cells only in the candidate

    @property
    def regressions(self) -> tuple[CellDelta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "regression")

    @property
    def improvements(self) -> tuple[CellDelta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "improved")

    def as_dict(self) -> dict:
        return {
            "cells": [
                {
                    "id": d.cell_id,
                    "base_seconds": d.base_seconds,
                    "candidate_seconds": d.cand_seconds,
                    "ratio": d.ratio,
                    "threshold": d.threshold,
                    "verdict": d.verdict,
                }
                for d in self.deltas
            ],
            "missing": list(self.missing),
            "added": list(self.added),
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
        }


def cell_threshold(
    base: dict,
    cand: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    mad_multiplier: float = DEFAULT_MAD_MULTIPLIER,
    abs_slack: float = DEFAULT_ABS_SLACK,
) -> float:
    """Relative slowdown a cell may show before it counts as a regression.

    ``max(tolerance, k * MAD / best, abs_slack / best)``: the static
    tolerance, widened by the measured run-to-run noise of whichever
    record is noisier, widened again for cells so short that a single
    scheduler quantum dwarfs them.  A cell whose repeats scatter (small
    class-S kernels, shared runners) thereby gates itself more loosely
    instead of flapping.
    """
    base_best = max(float(base["best_seconds"]), 1e-12)
    noise = max(
        float(base.get("mad_seconds", 0.0)),
        float(cand.get("mad_seconds", 0.0)),
    )
    return max(
        tolerance,
        mad_multiplier * noise / base_best,
        abs_slack / base_best,
    )


def compare_records(
    baseline: dict,
    candidate: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    mad_multiplier: float = DEFAULT_MAD_MULTIPLIER,
    abs_slack: float = DEFAULT_ABS_SLACK,
) -> Comparison:
    """Match cells by id and issue a noise-aware verdict per matched cell."""
    base_cells = {cell["id"]: cell for cell in baseline["cells"]}
    cand_cells = {cell["id"]: cell for cell in candidate["cells"]}
    deltas = []
    for cell_id, base in base_cells.items():
        cand = cand_cells.get(cell_id)
        if cand is None:
            continue
        threshold = cell_threshold(base, cand, tolerance, mad_multiplier, abs_slack)
        base_best = max(float(base["best_seconds"]), 1e-12)
        ratio = float(cand["best_seconds"]) / base_best
        if ratio > 1.0 + threshold:
            verdict = "regression"
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        deltas.append(
            CellDelta(
                cell_id=cell_id,
                base_seconds=float(base["best_seconds"]),
                cand_seconds=float(cand["best_seconds"]),
                threshold=threshold,
                verdict=verdict,
            )
        )
    return Comparison(
        deltas=tuple(deltas),
        missing=tuple(i for i in base_cells if i not in cand_cells),
        added=tuple(i for i in cand_cells if i not in base_cells),
    )


def latest_record_path(directory: str = ".") -> str | None:
    """Path of the highest-sequence BENCH_<seq>.json, if any."""
    best = None
    best_seq = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    for name in names:
        match = RECORD_PATTERN.match(name)
        if match and int(match.group(1)) >= best_seq:
            best_seq = int(match.group(1))
            best = os.path.join(directory, name)
    return best
