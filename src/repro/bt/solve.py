"""BT block-tridiagonal line solves (x_solve / y_solve / z_solve).

Each grid line carries a tridiagonal system of 5x5 blocks

    AA_i dU_{i-1} + BB_i dU_i + CC_i dU_{i+1} = rhs_i

with AA/BB/CC assembled from the flux Jacobian (fjac) and viscous
Jacobian (njac) of the direction's 1-D operator.  The block Thomas
elimination is sequential along the line and batched over all lines of
the worker's slab; the 5x5 block inversions use stacked
``numpy.linalg.solve`` (the Fortran uses unpivoted Gauss-Jordan -- an
inconsequential rounding difference at the 1e-8 verification tolerance).

Slab decomposition follows the OpenMP BT: x and y sweeps over interior k
planes, the z sweep over interior j planes.
"""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants


def _jacobians(ul, qsl, sql, vel: int, c: CFDConstants):
    """fjac and njac along the lines; ul has shape (..., n, 5).

    ``vel`` is the component index (1, 2, 3) of the sweep direction's
    momentum.  Returns two arrays of shape (..., n, 5, 5).
    """
    t1 = 1.0 / ul[..., 0]
    t2 = t1 * t1
    t3 = t1 * t2
    shape = ul.shape[:-1] + (5, 5)
    fjac = np.zeros(shape)
    njac = np.zeros(shape)
    uvel = ul[..., vel]
    u5 = ul[..., 4]
    others = [m for m in (1, 2, 3) if m != vel]

    fjac[..., 0, vel] = 1.0
    for m in (1, 2, 3):
        um = ul[..., m]
        if m == vel:
            fjac[..., m, 0] = -(uvel * t2 * uvel) + c.c2 * qsl
            fjac[..., m, m] = (2.0 - c.c2) * (uvel * t1)
            for j in others:
                fjac[..., m, j] = -c.c2 * (ul[..., j] * t1)
            fjac[..., m, 4] = c.c2
        else:
            fjac[..., m, 0] = -(um * uvel) * t2
            fjac[..., m, vel] = um * t1
            fjac[..., m, m] = uvel * t1
    fjac[..., 4, 0] = (c.c2 * 2.0 * sql - c.c1 * u5) * (uvel * t2)
    fjac[..., 4, vel] = c.c1 * u5 * t1 - c.c2 * (qsl + uvel * uvel * t2)
    for j in others:
        fjac[..., 4, j] = -c.c2 * (ul[..., j] * uvel) * t2
    fjac[..., 4, 4] = c.c1 * (uvel * t1)

    row4_col0 = -c.c1345 * t2 * u5
    for m in (1, 2, 3):
        cm = c.con43 * c.c3c4 if m == vel else c.c3c4
        um = ul[..., m]
        njac[..., m, 0] = -cm * t2 * um
        njac[..., m, m] = cm * t1
        njac[..., 4, m] = (cm - c.c1345) * t2 * um
        row4_col0 = row4_col0 - (cm - c.c1345) * t3 * (um * um)
    njac[..., 4, 0] = row4_col0
    njac[..., 4, 4] = c.c1345 * t1
    return fjac, njac


def _block_sweep(r, fjac, njac, tmp1: float, tmp2: float,
                 dvec: np.ndarray) -> None:
    """Block Thomas elimination along the sweep axis (-2 of r).

    ``tmp1`` = dt*t?1, ``tmp2`` = dt*t?2, ``dvec`` = the five diagonal
    dissipation constants of the direction.  Boundary rows (0 and n-1)
    carry identity blocks (lhsinit), so their elimination steps are
    no-ops and the transformed super-diagonal there is zero.
    """
    n = r.shape[-2]
    lines = r.shape[:-2]
    eye = np.eye(5)
    dmat = np.diag(dvec)
    ccs = np.zeros(lines + (n, 5, 5))  # transformed super-diagonals
    for i in range(1, n - 1):
        aa = -tmp2 * fjac[..., i - 1, :, :] - tmp1 * njac[..., i - 1, :, :] \
            - tmp1 * dmat
        bb = eye + 2.0 * tmp1 * njac[..., i, :, :] + 2.0 * tmp1 * dmat
        cc = tmp2 * fjac[..., i + 1, :, :] - tmp1 * njac[..., i + 1, :, :] \
            - tmp1 * dmat
        # rhs_i -= AA @ rhs_{i-1}           (matvec_sub)
        r[..., i, :] -= (aa @ r[..., i - 1, :, None])[..., 0]
        # BB -= AA @ CC'_{i-1}              (matmul_sub)
        bb -= aa @ ccs[..., i - 1, :, :]
        # CC'_i = BB^-1 CC; rhs_i = BB^-1 rhs_i   (binvcrhs)
        augmented = np.concatenate((cc, r[..., i, :, None]), axis=-1)
        solution = np.linalg.solve(bb, augmented)
        ccs[..., i, :, :] = solution[..., :5]
        r[..., i, :] = solution[..., 5]
    # Row n-1 has BB = I, AA = CC = 0: nothing to do.  Back substitution:
    for i in range(n - 2, -1, -1):
        r[..., i, :] -= (ccs[..., i, :, :] @ r[..., i + 1, :, None])[..., 0]


def _dvec(c: CFDConstants, direction: str) -> np.ndarray:
    return np.array([getattr(c, f"d{direction}{m}") for m in range(1, 6)])


def x_solve_slab(lo: int, hi: int, rhs, u, qs, square,
                 c: CFDConstants) -> None:
    """Block solves along x for interior k planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(1, -1))
    ul = u[sl]
    fjac, njac = _jacobians(ul, qs[sl], square[sl], 1, c)
    _block_sweep(rhs[sl], fjac, njac, c.dt * c.tx1, c.dt * c.tx2,
                 _dvec(c, "x"))


def y_solve_slab(lo: int, hi: int, rhs, u, qs, square,
                 c: CFDConstants) -> None:
    """Block solves along y for interior k planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(None), slice(1, -1))
    ul = np.swapaxes(u[sl], 1, 2)
    qsl = np.swapaxes(qs[sl], 1, 2)
    sql = np.swapaxes(square[sl], 1, 2)
    fjac, njac = _jacobians(ul, qsl, sql, 2, c)
    r = np.swapaxes(rhs[sl], 1, 2)
    _block_sweep(r, fjac, njac, c.dt * c.ty1, c.dt * c.ty2, _dvec(c, "y"))


def z_solve_slab(lo: int, hi: int, rhs, u, qs, square,
                 c: CFDConstants) -> None:
    """Block solves along z for interior j planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    sl = (slice(None), slice(1 + lo, 1 + hi), slice(1, -1))
    ul = np.moveaxis(u[sl], 0, 2)
    qsl = np.moveaxis(qs[sl], 0, 2)
    sql = np.moveaxis(square[sl], 0, 2)
    fjac, njac = _jacobians(ul, qsl, sql, 3, c)
    r = np.moveaxis(rhs[sl], 0, 2)
    _block_sweep(r, fjac, njac, c.dt * c.tz1, c.dt * c.tz2, _dvec(c, "z"))
