"""JGF Series: Fourier coefficients of (x+1)^x on [0, 2].

The kernel computes the first n coefficient pairs

    a_k = integral (x+1)^x cos(k pi x) dx,   b_k = ... sin(k pi x) dx

by the composite trapezoid rule with 1000 intervals.  Runtime is
dominated by ``pow``/``cos``/``sin`` library calls, which is why the
Java Grande study found Java competitive here: the transcendental
library, not compiled loop code, sets the pace.
"""

from __future__ import annotations

import math

import numpy as np

#: Trapezoid intervals per coefficient (the JGF constant).
INTERVALS = 1000


def series_numpy(n: int) -> np.ndarray:
    """First n coefficient pairs, vectorized; shape (n, 2), row 0 holds
    (a_0, 0)."""
    x = np.linspace(0.0, 2.0, INTERVALS + 1)
    fx = (x + 1.0) ** x
    weights = np.full(INTERVALS + 1, 2.0 / INTERVALS)
    weights[0] *= 0.5
    weights[-1] *= 0.5
    out = np.empty((n, 2))
    out[0, 0] = float(fx @ weights) / 2.0
    out[0, 1] = 0.0
    k = np.arange(1, n)[:, None]
    phase = k * np.pi * x[None, :]
    out[1:, 0] = (np.cos(phase) * fx[None, :]) @ weights / 2.0
    out[1:, 1] = (np.sin(phase) * fx[None, :]) @ weights / 2.0
    return out


def series_loops(n: int) -> list[tuple[float, float]]:
    """Same computation with interpreted per-point loops (JGF style)."""
    dx = 2.0 / INTERVALS
    out: list[tuple[float, float]] = []
    for k in range(n):
        acc_a = 0.0
        acc_b = 0.0
        for i in range(INTERVALS + 1):
            x = i * dx
            fx = math.pow(x + 1.0, x)
            w = dx if 0 < i < INTERVALS else 0.5 * dx
            if k == 0:
                acc_a += fx * w
            else:
                acc_a += math.cos(k * math.pi * x) * fx * w
                acc_b += math.sin(k * math.pi * x) * fx * w
        out.append((acc_a / 2.0, acc_b / 2.0 if k else 0.0))
    return out
