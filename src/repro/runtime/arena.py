"""Per-worker scratch arenas and allocation accounting.

The paper's central performance lever is memory discipline (Sec. 2:
linearized arrays beat multidimensional ones 2-3x; Table 7: ``lufact`` is
cache-miss-bound).  NumPy undoes that discipline by default: every ``+``
and ``*`` in a slab kernel allocates a full-slab temporary, so one
timestep churns hundreds of MB of allocator traffic and cold cache lines.

:class:`ScratchArena` is the antidote.  Each worker (the master for the
serial backend, every :class:`~repro.team.threads.ThreadTeam` thread,
every forked :class:`~repro.team.procs.ProcessTeam` process) owns exactly
one arena, reached through :func:`worker_arena`.  A fused kernel asks the
arena for scratch buffers (:meth:`ScratchArena.take`) and runs its
stencil as an in-place ``np.add(..., out=)`` / ``np.multiply(..., out=)``
chain into them.  The dispatch core starts a new arena *generation*
before every task execution (:func:`repro.runtime.dispatch.execute_task`),
which rewinds every pool cursor: buffers allocated by earlier dispatches
are handed out again instead of reallocated.  After a one-dispatch
warm-up the steady state is allocation-free.

Rules of the ``out=`` convention (see docs/architecture.md):

* ``take`` returns an *uninitialized* buffer -- the first operation into
  it must be a pure write (a binary ufunc with ``out=``, ``np.copyto``),
  never a read-modify-write;
* arena buffers are only valid for the duration of the task execution
  that took them -- never store one across dispatches;
* fused chains must preserve the reference kernel's floating-point
  grouping term by term, so results stay bit-identical.

Ownership is thread-local, which is what makes all three backends work
without locks: the serial master and every ThreadTeam worker are distinct
threads of one process, and every ProcessTeam worker calls
:func:`fresh_worker_arena` after the fork.  A respawned worker (thread or
process) simply builds a fresh arena lazily -- recovery never has to
repair arena state.

Allocation accounting
---------------------
:func:`allocation_probe_start` / :func:`allocation_probe_stop` measure
one span (the dispatch core wraps every dispatch) and feed the
per-region ``alloc_bytes`` / ``alloc_blocks`` counters of
:class:`~repro.runtime.region.RegionStats`:

``alloc_bytes``
    gross temporary churn: how far ``tracemalloc``'s peak rose above the
    traced size at span entry.  Naive kernels push this by 10-20 slab
    sizes per call; fused kernels by ~0 after warm-up.  Only measured
    while ``tracemalloc`` is tracing (``npb profile --alloc``), because
    tracing itself slows allocation.
``alloc_blocks``
    net live small-object blocks (``sys.getallocatedblocks`` delta): a
    leak detector.  Steady-state kernels should hold this near zero.

Both probes see allocations from the master and from thread workers (one
process); process-backend workers allocate in their own address spaces,
which the master-side probe cannot observe -- use
:func:`arena_stats_task` (``team.run_on_all``) to read the workers' own
arena counters instead.
"""

from __future__ import annotations

import sys
import threading
import tracemalloc

import numpy as np

#: Pools idle for this many generations are released at the next
#: generation reset.  Hot kernels touch their pools every few
#: generations; a pool this stale belongs to a finished benchmark.
STALE_GENERATIONS = 512


class ScratchArena:
    """Reusable scratch buffers keyed by ``(shape, dtype)``.

    ``take`` hands out buffers from per-key pools; :meth:`next_dispatch`
    starts a new generation, rewinding every pool cursor so the same
    buffers are reused by the next task.  The arena never zeroes buffers
    (callers overwrite) and never copies.
    """

    __slots__ = ("generation", "allocations", "reuses", "_pools",
                 "_cursors", "_touched")

    def __init__(self):
        #: current generation (bumped once per task execution)
        self.generation = 0
        #: fresh buffers allocated over the arena's lifetime
        self.allocations = 0
        #: takes served from an existing buffer
        self.reuses = 0
        self._pools: dict[tuple, list[np.ndarray]] = {}
        self._cursors: dict[tuple, int] = {}
        self._touched: dict[tuple, int] = {}

    # ------------------------------------------------------------------ #

    def next_dispatch(self) -> None:
        """Start a new generation: every pooled buffer becomes reusable.

        Pools that no task has touched for :data:`STALE_GENERATIONS`
        generations are released (their shapes belong to finished work);
        live views keep their data alive, so this is always safe.
        """
        self.generation += 1
        if self._cursors:
            self._cursors.clear()
        if self._pools and self.generation % STALE_GENERATIONS == 0:
            horizon = self.generation - STALE_GENERATIONS
            for key in [k for k, g in self._touched.items() if g < horizon]:
                del self._pools[key]
                del self._touched[key]

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialized scratch buffer of ``shape``/``dtype``.

        Repeated takes of the same key within one generation return
        *distinct* buffers; the same takes in the next generation return
        the same buffers again, in the same order.
        """
        if isinstance(shape, int):
            shape = (shape,)
        key = (tuple(shape), np.dtype(dtype).str)
        cursor = self._cursors.get(key, 0)
        self._cursors[key] = cursor + 1
        self._touched[key] = self.generation
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = []
        if cursor < len(pool):
            self.reuses += 1
            return pool[cursor]
        buffer = np.empty(key[0], dtype=np.dtype(dtype))
        pool.append(buffer)
        self.allocations += 1
        return buffer

    def take_like(self, template: np.ndarray) -> np.ndarray:
        """Scratch buffer with ``template``'s shape and dtype."""
        return self.take(template.shape, template.dtype)

    # ------------------------------------------------------------------ #

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena's pools."""
        return sum(b.nbytes for pool in self._pools.values() for b in pool)

    def stats(self) -> dict:
        """Counters for tests, ``bench_alloc`` and the CI growth gate."""
        return {
            "generation": self.generation,
            "allocations": self.allocations,
            "reuses": self.reuses,
            "buffers": sum(len(p) for p in self._pools.values()),
            "nbytes": self.nbytes,
        }

    def release(self) -> None:
        """Drop every pooled buffer (counters survive)."""
        self._pools.clear()
        self._cursors.clear()
        self._touched.clear()


# --------------------------------------------------------------------- #
# per-worker ownership

_tls = threading.local()


def worker_arena() -> ScratchArena:
    """The calling worker's arena (created lazily, one per thread).

    The serial master, every ThreadTeam worker and every ProcessTeam
    worker run on distinct threads (or in distinct processes), so
    thread-local storage gives exactly the per-worker ownership the
    fused kernels need -- with no locking on the hot path.
    """
    arena = getattr(_tls, "arena", None)
    if arena is None:
        arena = _tls.arena = ScratchArena()
    return arena


def fresh_worker_arena() -> ScratchArena:
    """Discard any inherited arena and start fresh (post-fork hook).

    A forked ProcessTeam worker inherits the master thread's TLS slot;
    starting from an empty arena keeps the copied master buffers from
    being kept alive in every worker.
    """
    _tls.arena = ScratchArena()
    return _tls.arena


def arena_stats_task(rank: int, nworkers: int) -> dict:
    """``team.run_on_all`` task: each worker reports its own arena
    counters (the only way to see process-backend worker arenas)."""
    return worker_arena().stats()


def arena_rewind_task(rank: int, nworkers: int) -> int:
    """``team.run_on_all`` task: start a fresh arena generation on each
    worker and return the new generation number.

    This is the between-jobs arena reset used by
    :meth:`repro.team.base.Team.reset`.  It deliberately does *not*
    release pooled buffers -- a warm pool is exactly the state a reused
    team amortizes across jobs (the next job's ``take`` calls of the
    same shapes are allocation-free); buffers whose shapes belong to a
    finished job are reclaimed by the :data:`STALE_GENERATIONS` GC.
    """
    arena = worker_arena()
    arena.next_dispatch()
    return arena.generation


# --------------------------------------------------------------------- #
# allocation probes (tracemalloc + live-block deltas around one span)


def allocation_probe_start() -> "tuple[int, int] | None":
    """Begin one accounting span; ``None`` when tracemalloc is off.

    Resets tracemalloc's peak so the span's ``alloc_bytes`` measures the
    peak rise *within* the span, not a high-water mark from before it.
    """
    if not tracemalloc.is_tracing():
        return None
    tracemalloc.reset_peak()
    current, _ = tracemalloc.get_traced_memory()
    return current, sys.getallocatedblocks()


def allocation_probe_stop(token: "tuple[int, int] | None",
                          ) -> "tuple[int, int] | None":
    """Finish a span: ``(alloc_bytes, alloc_blocks)`` deltas, or None."""
    if token is None:
        return None
    entry_bytes, entry_blocks = token
    _, peak = tracemalloc.get_traced_memory()
    return (max(0, peak - entry_bytes),
            sys.getallocatedblocks() - entry_blocks)
