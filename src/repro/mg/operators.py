"""MG grid operators (mg.f: resid, psinv, rprj3, interp, comm3, norm2u3).

All arrays are C-ordered with axes ``(i3, i2, i1)`` and one ghost layer per
side, so a level with interior ``m`` has shape ``(m+2, m+2, m+2)``.  Each
operator has a ``_slab`` worker parallelized over the outermost interior
dimension ``i3`` -- the decomposition of the OpenMP MG that the paper's
Java threading mirrors -- plus a team-level driver.

Floating-point grouping follows the Fortran statement order term by term so
results match the reference to the last bit modulo slab-boundary reduction
order.

Memory discipline: the hot slab kernels are written as fused in-place ufunc
chains (``np.add(..., out=)`` etc.) into per-worker
:class:`~repro.runtime.arena.ScratchArena` buffers, so the steady-state
iteration loop allocates nothing -- every temporary the expression-style
kernels used to materialize per call is replaced by a reused arena buffer.
Each fused chain replicates the exact left-associative pairwise grouping of
its expression form, so the fusion is bit-identical (asserted by
``tests/kernels/test_fused_equivalence.py``).  The original expression
kernels are kept as ``*_slab_reference`` for that cross-check and as the
readable specification.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import registry
from repro.runtime.arena import worker_arena
from repro.team.base import Team


def comm3(x: np.ndarray) -> None:
    """Periodic ghost-cell exchange, axis i1 then i2 then i3 (comm3)."""
    x[:, :, 0] = x[:, :, -2]
    x[:, :, -1] = x[:, :, 1]
    x[:, 0, :] = x[:, -2, :]
    x[:, -1, :] = x[:, 1, :]
    x[0, :, :] = x[-2, :, :]
    x[-1, :, :] = x[1, :, :]


def zero3(x: np.ndarray) -> None:
    x.fill(0.0)


# --------------------------------------------------------------------- #
# resid: r = v - A u

def _resid_slab_reference(lo: int, hi: int, u, v, r, a) -> None:
    """Expression-form residual (the readable spec; allocates temporaries).

    The a(1) face term is zero for the NPB coefficients and, following the
    Fortran, is never computed.
    """
    if hi <= lo:
        return
    a0, _, a2, a3 = a
    uc = u[lo : hi + 2]  # the slab plus one halo plane each side
    u1 = (uc[1:-1, :-2, :] + uc[1:-1, 2:, :]
          + uc[:-2, 1:-1, :] + uc[2:, 1:-1, :])
    u2 = (uc[:-2, :-2, :] + uc[:-2, 2:, :]
          + uc[2:, :-2, :] + uc[2:, 2:, :])
    center = uc[1:-1, 1:-1, 1:-1]
    r[1 + lo : 1 + hi, 1:-1, 1:-1] = (
        v[1 + lo : 1 + hi, 1:-1, 1:-1]
        - a0 * center
        - a2 * (u2[:, :, 1:-1] + u1[:, :, :-2] + u1[:, :, 2:])
        - a3 * (u2[:, :, :-2] + u2[:, :, 2:])
    )


def _resid_slab(lo: int, hi: int, u, v, r, a) -> None:
    """Residual on interior planes [1+lo, 1+hi), fused into arena scratch.

    Bit-identical to :func:`_resid_slab_reference`: every chain below is
    the left-associative pairwise grouping of the expression form.  The
    result accumulates in scratch and is copied into ``r`` last because
    ``v`` may alias ``r`` (the V-cycle calls ``resid(team, u, r, r, a)``).
    """
    if hi <= lo:
        return
    a0, _, a2, a3 = a
    arena = worker_arena()
    uc = u[lo : hi + 2]  # the slab plus one halo plane each side
    n3, n2, n1 = hi - lo, u.shape[1] - 2, u.shape[2]

    u1 = arena.take((n3, n2, n1))
    np.add(uc[1:-1, :-2, :], uc[1:-1, 2:, :], out=u1)
    np.add(u1, uc[:-2, 1:-1, :], out=u1)
    np.add(u1, uc[2:, 1:-1, :], out=u1)

    u2 = arena.take((n3, n2, n1))
    np.add(uc[:-2, :-2, :], uc[:-2, 2:, :], out=u2)
    np.add(u2, uc[2:, :-2, :], out=u2)
    np.add(u2, uc[2:, 2:, :], out=u2)

    acc = arena.take((n3, n2, n1 - 2))
    t = arena.take((n3, n2, n1 - 2))
    center = uc[1:-1, 1:-1, 1:-1]
    np.multiply(center, a0, out=acc)                      # a0 * u
    np.subtract(v[1 + lo : 1 + hi, 1:-1, 1:-1], acc, out=acc)
    np.add(u2[:, :, 1:-1], u1[:, :, :-2], out=t)
    np.add(t, u1[:, :, 2:], out=t)
    np.multiply(t, a2, out=t)
    np.subtract(acc, t, out=acc)
    np.add(u2[:, :, :-2], u2[:, :, 2:], out=t)
    np.multiply(t, a3, out=t)
    np.subtract(acc, t, out=acc)
    r[1 + lo : 1 + hi, 1:-1, 1:-1] = acc


def resid(team: Team, u, v, r, a) -> None:
    """r = v - A u (safe when v is r), then ghost exchange on r."""
    team.parallel_kernel("mg.resid", u.shape[0] - 2, u, v, r, a)
    comm3(r)


# --------------------------------------------------------------------- #
# psinv: u = u + S r  (the smoother)

def _psinv_slab_reference(lo: int, hi: int, r, u, c) -> None:
    """Expression-form smoother (the readable spec; allocates temporaries).

    The c(3) corner term is zero for both NPB coefficient sets and,
    following the Fortran, is never computed.
    """
    if hi <= lo:
        return
    c0, c1, c2, _ = c
    rc = r[lo : hi + 2]
    r1 = (rc[1:-1, :-2, :] + rc[1:-1, 2:, :]
          + rc[:-2, 1:-1, :] + rc[2:, 1:-1, :])
    r2 = (rc[:-2, :-2, :] + rc[:-2, 2:, :]
          + rc[2:, :-2, :] + rc[2:, 2:, :])
    center = rc[1:-1, 1:-1, :]
    u[1 + lo : 1 + hi, 1:-1, 1:-1] += (
        c0 * center[:, :, 1:-1]
        + c1 * (center[:, :, :-2] + center[:, :, 2:] + r1[:, :, 1:-1])
        + c2 * (r2[:, :, 1:-1] + r1[:, :, :-2] + r1[:, :, 2:])
    )


def _psinv_slab(lo: int, hi: int, r, u, c) -> None:
    """Smoother update on interior planes [1+lo, 1+hi), fused into arena
    scratch; bit-identical to :func:`_psinv_slab_reference`."""
    if hi <= lo:
        return
    c0, c1, c2, _ = c
    arena = worker_arena()
    rc = r[lo : hi + 2]
    n3, n2, n1 = hi - lo, r.shape[1] - 2, r.shape[2]

    r1 = arena.take((n3, n2, n1))
    np.add(rc[1:-1, :-2, :], rc[1:-1, 2:, :], out=r1)
    np.add(r1, rc[:-2, 1:-1, :], out=r1)
    np.add(r1, rc[2:, 1:-1, :], out=r1)

    r2 = arena.take((n3, n2, n1))
    np.add(rc[:-2, :-2, :], rc[:-2, 2:, :], out=r2)
    np.add(r2, rc[2:, :-2, :], out=r2)
    np.add(r2, rc[2:, 2:, :], out=r2)

    acc = arena.take((n3, n2, n1 - 2))
    t = arena.take((n3, n2, n1 - 2))
    center = rc[1:-1, 1:-1, :]
    np.multiply(center[:, :, 1:-1], c0, out=acc)          # c0 * r
    np.add(center[:, :, :-2], center[:, :, 2:], out=t)
    np.add(t, r1[:, :, 1:-1], out=t)
    np.multiply(t, c1, out=t)
    np.add(acc, t, out=acc)
    np.add(r2[:, :, 1:-1], r1[:, :, :-2], out=t)
    np.add(t, r1[:, :, 2:], out=t)
    np.multiply(t, c2, out=t)
    np.add(acc, t, out=acc)
    uv = u[1 + lo : 1 + hi, 1:-1, 1:-1]
    np.add(uv, acc, out=uv)


def psinv(team: Team, r, u, c) -> None:
    """u += S r, then ghost exchange on u."""
    team.parallel_kernel("mg.psinv", r.shape[0] - 2, r, u, c)
    comm3(u)


# --------------------------------------------------------------------- #
# rprj3: full-weighting restriction fine r -> coarse s

def _fine_slices(lo: int, hi: int, d: int, offset: int) -> slice:
    """Fine-grid slice hitting ``2*jj + 1 - d + offset`` for coarse
    interior indices ``jj`` in [lo, hi) (0-based)."""
    start = 2 * lo + 1 - d + offset
    stop = 2 * (hi - 1) + 1 - d + offset + 1
    return slice(start, stop, 2)


def _rprj3_slab_reference(lo: int, hi: int, r, s, d) -> None:
    """Expression-form restriction (the readable spec; allocates
    temporaries)."""
    if hi <= lo:
        return
    m3j, m2j, m1j = s.shape
    d3, d2, d1 = d
    s3 = {o: _fine_slices(1 + lo, 1 + hi, d3, o) for o in (-1, 0, 1)}
    s2 = {o: _fine_slices(1, m2j - 1, d2, o) for o in (-1, 0, 1)}
    s1 = {o: _fine_slices(1, m1j - 1, d1, o) for o in (-1, 0, 1)}

    def R(o3: int, o2: int, o1: int) -> np.ndarray:
        return r[s3[o3], s2[o2], s1[o1]]

    # x1/y1 are the lateral sums of the Fortran at i1-1 and i1+1; x2/y2 the
    # same sums at the center i1.  Grouping follows the Fortran statements.
    def x1(o1: int) -> np.ndarray:
        return R(0, -1, o1) + R(0, 1, o1) + R(-1, 0, o1) + R(1, 0, o1)

    def y1(o1: int) -> np.ndarray:
        return R(-1, -1, o1) + R(1, -1, o1) + R(-1, 1, o1) + R(1, 1, o1)

    # Weights sum to 4: the factor that rescales the residual of the
    # unscaled NPB stencil from grid h to grid 2h.
    s[1 + lo : 1 + hi, 1:-1, 1:-1] = (
        0.5 * R(0, 0, 0)
        + 0.25 * (R(0, 0, -1) + R(0, 0, 1) + x1(0))
        + 0.125 * (x1(-1) + x1(1) + y1(0))
        + 0.0625 * (y1(-1) + y1(1))
    )


def _rprj3_slab(lo: int, hi: int, r, s, d) -> None:
    """Restriction writing coarse interior planes [1+lo, 1+hi), fused into
    arena scratch; bit-identical to :func:`_rprj3_slab_reference`."""
    if hi <= lo:
        return
    m3j, m2j, m1j = s.shape
    d3, d2, d1 = d
    s3 = {o: _fine_slices(1 + lo, 1 + hi, d3, o) for o in (-1, 0, 1)}
    s2 = {o: _fine_slices(1, m2j - 1, d2, o) for o in (-1, 0, 1)}
    s1 = {o: _fine_slices(1, m1j - 1, d1, o) for o in (-1, 0, 1)}

    def R(o3: int, o2: int, o1: int) -> np.ndarray:
        return r[s3[o3], s2[o2], s1[o1]]

    def x1_into(o1: int, out: np.ndarray) -> np.ndarray:
        np.add(R(0, -1, o1), R(0, 1, o1), out=out)
        np.add(out, R(-1, 0, o1), out=out)
        np.add(out, R(1, 0, o1), out=out)
        return out

    def y1_into(o1: int, out: np.ndarray) -> np.ndarray:
        np.add(R(-1, -1, o1), R(1, -1, o1), out=out)
        np.add(out, R(-1, 1, o1), out=out)
        np.add(out, R(1, 1, o1), out=out)
        return out

    arena = worker_arena()
    shape = (hi - lo, m2j - 2, m1j - 2)
    acc = arena.take(shape)
    t = arena.take(shape)
    t2 = arena.take(shape)
    np.multiply(R(0, 0, 0), 0.5, out=acc)                 # 0.5 * center
    np.add(R(0, 0, -1), R(0, 0, 1), out=t)
    np.add(t, x1_into(0, t2), out=t)
    np.multiply(t, 0.25, out=t)
    np.add(acc, t, out=acc)
    np.add(x1_into(-1, t), x1_into(1, t2), out=t)
    np.add(t, y1_into(0, t2), out=t)
    np.multiply(t, 0.125, out=t)
    np.add(acc, t, out=acc)
    np.add(y1_into(-1, t), y1_into(1, t2), out=t)
    np.multiply(t, 0.0625, out=t)
    np.add(acc, t, out=acc)
    s[1 + lo : 1 + hi, 1:-1, 1:-1] = acc


def rprj3(team: Team, r, s) -> None:
    """Restrict fine residual r to coarse grid s, then exchange ghosts."""
    d = tuple(2 if mk == 3 else 1 for mk in r.shape)
    team.parallel_kernel("mg.rprj3", s.shape[0] - 2, r, s, d)
    comm3(s)


# --------------------------------------------------------------------- #
# interp: trilinear prolongation, u += P z

def _interp_slab_reference(lo: int, hi: int, z, u) -> None:
    """Expression-form prolongation (the readable spec; allocates
    temporaries)."""
    if hi <= lo:
        return
    mm3, mm2, mm1 = z.shape
    a = slice(lo, hi)          # coarse i3
    ap = slice(lo + 1, hi + 1)  # coarse i3+1
    # Fortran z1/z2/z3 lateral sums (statement order preserved):
    z1 = z[a, 1:, :] + z[a, :-1, :]
    z2 = z[ap, :-1, :] + z[a, :-1, :]
    z3 = z[ap, 1:, :] + z[ap, :-1, :] + z1

    fe3 = slice(2 * lo, 2 * (hi - 1) + 1, 2)       # fine even planes 2*cz3
    fo3 = slice(2 * lo + 1, 2 * (hi - 1) + 2, 2)   # fine odd planes 2*cz3+1
    fe = slice(0, 2 * (mm2 - 2) + 1, 2)            # fine even rows/cols
    fo = slice(1, 2 * (mm2 - 2) + 2, 2)            # fine odd rows/cols
    c = slice(0, mm1 - 1)                          # coarse i1
    cp = slice(1, mm1)                             # coarse i1+1

    u[fe3, fe, fe] += z[a, :-1, c]
    u[fe3, fe, fo] += 0.5 * (z[a, :-1, cp] + z[a, :-1, c])
    u[fe3, fo, fe] += 0.5 * z1[:, :, c]
    u[fe3, fo, fo] += 0.25 * (z1[:, :, c] + z1[:, :, cp])
    u[fo3, fe, fe] += 0.5 * z2[:, :, c]
    u[fo3, fe, fo] += 0.25 * (z2[:, :, c] + z2[:, :, cp])
    u[fo3, fo, fe] += 0.25 * z3[:, :, c]
    u[fo3, fo, fo] += 0.125 * (z3[:, :, c] + z3[:, :, cp])


def _interp_slab(lo: int, hi: int, z, u) -> None:
    """Prolongation for coarse planes cz3 in [lo, hi) (0-based, up to
    mm3-1), writing fine planes 2*cz3 and 2*cz3+1; fused into arena
    scratch, bit-identical to :func:`_interp_slab_reference`."""
    if hi <= lo:
        return
    mm3, mm2, mm1 = z.shape
    a = slice(lo, hi)          # coarse i3
    ap = slice(lo + 1, hi + 1)  # coarse i3+1
    arena = worker_arena()
    # Fortran z1/z2/z3 lateral sums (statement order preserved):
    z1 = arena.take((hi - lo, mm2 - 1, mm1))
    np.add(z[a, 1:, :], z[a, :-1, :], out=z1)
    z2 = arena.take((hi - lo, mm2 - 1, mm1))
    np.add(z[ap, :-1, :], z[a, :-1, :], out=z2)
    z3 = arena.take((hi - lo, mm2 - 1, mm1))
    np.add(z[ap, 1:, :], z[ap, :-1, :], out=z3)
    np.add(z3, z1, out=z3)

    fe3 = slice(2 * lo, 2 * (hi - 1) + 1, 2)       # fine even planes 2*cz3
    fo3 = slice(2 * lo + 1, 2 * (hi - 1) + 2, 2)   # fine odd planes 2*cz3+1
    fe = slice(0, 2 * (mm2 - 2) + 1, 2)            # fine even rows/cols
    fo = slice(1, 2 * (mm2 - 2) + 2, 2)            # fine odd rows/cols
    c = slice(0, mm1 - 1)                          # coarse i1
    cp = slice(1, mm1)                             # coarse i1+1

    t = arena.take((hi - lo, mm2 - 1, mm1 - 1))

    uv = u[fe3, fe, fe]
    np.add(uv, z[a, :-1, c], out=uv)
    uv = u[fe3, fe, fo]
    np.add(z[a, :-1, cp], z[a, :-1, c], out=t)
    np.multiply(t, 0.5, out=t)
    np.add(uv, t, out=uv)
    uv = u[fe3, fo, fe]
    np.multiply(z1[:, :, c], 0.5, out=t)
    np.add(uv, t, out=uv)
    uv = u[fe3, fo, fo]
    np.add(z1[:, :, c], z1[:, :, cp], out=t)
    np.multiply(t, 0.25, out=t)
    np.add(uv, t, out=uv)
    uv = u[fo3, fe, fe]
    np.multiply(z2[:, :, c], 0.5, out=t)
    np.add(uv, t, out=uv)
    uv = u[fo3, fe, fo]
    np.add(z2[:, :, c], z2[:, :, cp], out=t)
    np.multiply(t, 0.25, out=t)
    np.add(uv, t, out=uv)
    uv = u[fo3, fo, fe]
    np.multiply(z3[:, :, c], 0.25, out=t)
    np.add(uv, t, out=uv)
    uv = u[fo3, fo, fo]
    np.add(z3[:, :, c], z3[:, :, cp], out=t)
    np.multiply(t, 0.125, out=t)
    np.add(uv, t, out=uv)


def interp(team: Team, z, u) -> None:
    """u += P z.  No ghost exchange here, exactly as in the serial mg.f
    (the following resid/psinv re-establish the ghosts they produce)."""
    if 3 in u.shape:
        raise NotImplementedError(
            "interp onto a size-3 grid (interior 1) is not reachable for "
            "the NPB problem classes"
        )
    team.parallel_kernel("mg.interp", z.shape[0] - 1, z, u)


# --------------------------------------------------------------------- #
# norm2u3

def _norm_slab_reference(lo: int, hi: int, r) -> tuple[float, float]:
    """Expression-form partials (allocates ``interior*interior`` and
    ``np.abs(interior)`` temporaries)."""
    if hi <= lo:
        return 0.0, 0.0
    interior = r[1 + lo : 1 + hi, 1:-1, 1:-1]
    return float(np.sum(interior * interior)), float(np.max(np.abs(interior)))


def _norm_slab(lo: int, hi: int, r) -> tuple[float, float]:
    """Partial (sum of squares, max abs) over interior planes [1+lo, 1+hi).

    The interior view is copied into one contiguous arena buffer, squared
    via a BLAS dot (``d @ d``), then |.|-reduced in place.  The dot's
    accumulation order differs from ``np.sum(interior * interior)`` in the
    last ulp -- the only fused kernel in this module that is not
    bit-identical to its reference (MG verification compares at 1e-8, and
    the equivalence suite pins the norm at 1e-13 relative).
    """
    if hi <= lo:
        return 0.0, 0.0
    interior = r[1 + lo : 1 + hi, 1:-1, 1:-1]
    scratch = worker_arena().take(interior.shape)
    np.copyto(scratch, interior)
    d = scratch.reshape(-1)
    ssq = float(d @ d)
    np.abs(scratch, out=scratch)
    return ssq, float(scratch.max())


def norm2u3(team: Team, r, nx: int, ny: int, nz: int) -> tuple[float, float]:
    """L2 norm (per-point) and max norm of the interior (norm2u3)."""
    partials = team.parallel_kernel("mg.norm2u3", r.shape[0] - 2, r)
    total = sum(p[0] for p in partials)
    rnmu = max(p[1] for p in partials)
    rnm2 = float(np.sqrt(total / (float(nx) * ny * nz)))
    return rnm2, rnmu


# --------------------------------------------------------------------- #
# kernel-tier registration (see repro.kernels.registry); the compiled
# variants of the hot kernels live in repro.kernels.compiled

registry.register("mg.resid", "reference", _resid_slab_reference)
registry.register("mg.resid", "fused", _resid_slab)
registry.register("mg.psinv", "reference", _psinv_slab_reference)
registry.register("mg.psinv", "fused", _psinv_slab)
registry.register("mg.rprj3", "reference", _rprj3_slab_reference)
registry.register("mg.rprj3", "fused", _rprj3_slab)
registry.register("mg.interp", "reference", _interp_slab_reference)
registry.register("mg.interp", "fused", _interp_slab)
registry.register("mg.norm2u3", "reference", _norm_slab_reference)
registry.register(
    "mg.norm2u3", "fused", _norm_slab, tolerance=1e-13,
    note="BLAS dot accumulation order differs from np.sum in the last "
         "ulp (see _norm_slab docstring); MG verification compares at "
         "1e-8")
