"""EP: Embarrassingly Parallel benchmark.

Generates pairs of Gaussian deviates by the acceptance-rejection (Marsaglia
polar) method from the NPB 46-bit LCG and tallies them in square annuli.
There is no communication except a final sum, making EP the upper bound on
achievable parallel speedup.

EP is not in the paper's Tables 2-6 (the Java suite covered the seven
NPB2.3-serial codes); it is included here for suite completeness, matching
the full NPB specification and the related Java Grande / Adelaide ports the
paper cites.
"""

from repro.ep.benchmark import EP
from repro.ep.params import EP_CLASSES, EPParams

__all__ = ["EP", "EPParams", "EP_CLASSES"]
