"""``npb loadgen``: traffic harness for the (sharded) job service.

The paper's core result is a curve -- performance as load grows -- and
the service layer deserves the same discipline as the kernels: not one
number but a reproducible load-vs-latency trajectory.  This module
generates service traffic in the two canonical shapes:

* **closed-loop** -- a fixed number of concurrent clients, each issuing
  its next request the moment the previous one completes.  Sweeping the
  concurrency (``--concurrency 1,2,4``) traces the scaling curve the
  gpaw benchmark methodology treats as *the* result.
* **open-loop** -- Poisson arrivals at a fixed rate, independent of
  completions, which is how production traffic actually behaves: the
  service cannot slow its clients down, only queue or shed (429).

Requests are drawn from a weighted :class:`TrafficProfile` mix of
benchmark specs.  Each profile names a ``duplicate_fraction``: that
share of requests is cache-eligible (an identical spec resubmitted, the
millions-of-users hot path), while the rest carries ``no_cache`` and
always executes -- so the cache-hit ratio of a run is a measured result
with a known target, not an accident.

Every run appends a schema-versioned ``LOADGEN_<seq>.json`` record next
to the ``BENCH_<seq>.json`` trajectory: per-step p50/p95/p99 latency,
throughput, cache-hit ratio, 429 rate, per-spec and per-shard
breakdowns, and an SLO verdict.  ``npb loadgen --compare`` gates a
candidate record against a baseline with the same noise-aware verdict
philosophy as the bench comparator, reusing
:mod:`repro.harness.stats` for the robust statistics.
"""

from __future__ import annotations

import json
import os
import random
import re
import threading
import time
from dataclasses import dataclass, field

from repro.harness import records
from repro.harness.stats import mad, median, percentile
from repro.service.api import ServiceClient, ServiceUnavailable

#: Version of the LOADGEN_*.json record layout.
#: v2: step ``requests`` blocks carry ``coalesced`` (ok responses that
#: attached to an in-flight job instead of executing -- the async front
#: end's in-flight dedup) and every step carries ``dedup_ratio``
#: (``(cached + coalesced) / ok``: the share of successful requests that
#: cost no execution).  v1 records are migrated on load with zero
#: coalesced and ``dedup_ratio`` equal to the recorded
#: ``cache_hit_ratio`` (before coalescing existed, the cache was the
#: only dedup layer).
SCHEMA_VERSION = 2

#: The ``kind`` tag every record carries (guards against foreign JSON).
RECORD_KIND = "npb-loadgen-record"

#: Trajectory file naming: LOADGEN_0001.json, LOADGEN_0002.json, ...
RECORD_PATTERN = re.compile(r"^LOADGEN_(\d{4})\.json$")

#: Relative change tolerated before the noise term kicks in.  Service
#: latency is far noisier than best-of-k kernel timing (queueing, GC,
#: socket accept jitter), so the band starts wider than the bench one.
DEFAULT_TOLERANCE = 0.25

#: ``k`` in the ``k * MAD / p50`` noise band of the comparator.
DEFAULT_MAD_MULTIPLIER = 3.0

#: Absolute seconds of latency change always tolerated.
DEFAULT_ABS_SLACK = 0.010


# ===================================================================== #
# traffic mixes
# ===================================================================== #


@dataclass(frozen=True)
class MixEntry:
    """One weighted spec in a traffic mix."""

    benchmark: str
    problem_class: str = "S"
    backend: str = "serial"
    workers: int = 1
    kernel_backend: str | None = None
    weight: float = 1.0

    @property
    def cell_id(self) -> str:
        base = (
            f"{self.benchmark}.{self.problem_class}."
            f"{self.backend}.x{self.workers}"
        )
        if self.kernel_backend and self.kernel_backend != "fused":
            return f"{base}.{self.kernel_backend}"
        return base

    def payload(self) -> dict:
        payload = {
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "backend": self.backend,
            "workers": self.workers,
        }
        if self.kernel_backend is not None:
            payload["kernel_backend"] = self.kernel_backend
        return payload

    @classmethod
    def parse(cls, spec: str) -> "MixEntry":
        """Parse ``BENCH[:CLASS[:BACKEND[:WORKERS[:TIER]]]][@WEIGHT]``.

        ``CG`` alone is CG class S serial x1 at weight 1;
        ``CG:S:threads:2@3`` weights a threaded cell 3x.
        """
        body, _, weight_text = spec.partition("@")
        weight = float(weight_text) if weight_text else 1.0
        if weight <= 0:
            raise ValueError(f"mix weight must be > 0 in {spec!r}")
        parts = body.split(":")
        if not parts[0] or len(parts) > 5:
            raise ValueError(
                f"mix spec {spec!r} is not "
                f"BENCH[:CLASS[:BACKEND[:WORKERS[:TIER]]]][@WEIGHT]"
            )
        return cls(
            benchmark=parts[0].upper(),
            problem_class=(parts[1].upper() if len(parts) > 1 else "S"),
            backend=(parts[2] if len(parts) > 2 else "serial"),
            workers=(int(parts[3]) if len(parts) > 3 else 1),
            kernel_backend=(parts[4] if len(parts) > 4 else None),
            weight=weight,
        )


@dataclass(frozen=True)
class TrafficProfile:
    """A named weighted mix plus its duplicate-traffic share."""

    name: str
    entries: tuple[MixEntry, ...]
    #: fraction of requests that are cache-eligible resubmissions of a
    #: mix spec; the remaining requests carry ``no_cache`` and always
    #: execute, modeling unique work
    duplicate_fraction: float
    description: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "duplicate_fraction": self.duplicate_fraction,
            "entries": [
                {"cell": entry.cell_id, "weight": entry.weight}
                for entry in self.entries
            ],
        }


#: Built-in traffic profiles (``npb loadgen --profile``).
PROFILES: dict[str, TrafficProfile] = {
    "smoke": TrafficProfile(
        name="smoke",
        entries=(MixEntry("CG"), MixEntry("MG")),
        duplicate_fraction=0.75,
        description="duplicate-heavy CG/MG class-S mix for CI smoke runs",
    ),
    "cache-heavy": TrafficProfile(
        name="cache-heavy",
        entries=(MixEntry("CG"), MixEntry("MG"), MixEntry("FT")),
        duplicate_fraction=0.9,
        description="the millions-of-users shape: almost all repeat work",
    ),
    "mixed": TrafficProfile(
        name="mixed",
        entries=(
            MixEntry("CG"),
            MixEntry("MG"),
            MixEntry("FT"),
            MixEntry("IS"),
            MixEntry("EP", weight=0.5),
        ),
        duplicate_fraction=0.3,
        description="broad benchmark blend, mostly unique work",
    ),
}


def parse_mix(text: str, duplicate_fraction: float = 0.5) -> TrafficProfile:
    """Build a custom profile from comma-separated :meth:`MixEntry.parse`
    specs (``CG:S:serial:1@2,MG``)."""
    entries = tuple(
        MixEntry.parse(part) for part in text.split(",") if part.strip()
    )
    if not entries:
        raise ValueError(f"empty traffic mix {text!r}")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1]")
    return TrafficProfile(
        name="custom",
        entries=entries,
        duplicate_fraction=duplicate_fraction,
        description=f"custom mix {text}",
    )


class RequestSampler:
    """Deterministic, thread-safe stream of submission payloads."""

    def __init__(self, profile: TrafficProfile, seed: int = 0):
        self.profile = profile
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._weights = [entry.weight for entry in profile.entries]

    def next_request(self) -> tuple[str, dict]:
        """``(cell_id, payload)`` for the next request."""
        with self._lock:
            (entry,) = self._rng.choices(
                self.profile.entries, weights=self._weights
            )
            duplicate = self._rng.random() < self.profile.duplicate_fraction
        payload = entry.payload()
        payload["wait"] = True
        # Cache-eligible duplicates model repeat traffic; the rest is
        # forced-unique work so the hit ratio has a known target.
        payload["no_cache"] = not duplicate
        return entry.cell_id, payload

    def arrival_gap(self, rate: float) -> float:
        """Exponential inter-arrival gap for open-loop Poisson traffic."""
        with self._lock:
            return self._rng.expovariate(rate)


# ===================================================================== #
# request execution and accounting
# ===================================================================== #


@dataclass(frozen=True)
class RequestOutcome:
    """One completed (or failed) request, as the accounting sees it."""

    cell_id: str
    #: "ok" | "rejected" (429 after retries) | "failed" | "unreachable"
    status: str
    code: int
    cache_hit: bool
    latency_seconds: float
    #: shard that served it (None when not behind a coordinator)
    shard: str | None = None
    #: True when the coordinator routed around a dead shard
    degraded: bool = False
    #: True when the response was coalesced onto an in-flight job
    #: (``coalesced_with`` present -- async front end only)
    coalesced: bool = False
    #: job id of the admitted job (None for 429/unreachable)
    job_id: str | None = None
    #: trace id when the request was traced (``--trace`` runs)
    trace_id: str | None = None


def classify_response(code: int, body: dict) -> tuple[str, bool]:
    """Map an HTTP response onto an outcome status + cache-hit flag."""
    if code in (200, 202):
        if body.get("state") == "failed":
            return "failed", False
        return "ok", bool(body.get("cache_hit"))
    if code == 429:
        return "rejected", False
    return "failed", False


def issue_request(submit, cell_id: str, payload: dict) -> RequestOutcome:
    """Time one request through ``submit(payload) -> (code, body)``."""
    start = time.perf_counter()
    try:
        code, body = submit(payload)
    except ServiceUnavailable:
        return RequestOutcome(
            cell_id=cell_id,
            status="unreachable",
            code=0,
            cache_hit=False,
            latency_seconds=time.perf_counter() - start,
        )
    latency = time.perf_counter() - start
    status, cache_hit = classify_response(code, body)
    routing = body.get("routing") or {}
    result = body.get("result") or {}
    return RequestOutcome(
        cell_id=cell_id,
        status=status,
        code=code,
        cache_hit=cache_hit,
        latency_seconds=latency,
        shard=routing.get("served_by"),
        degraded=bool(routing.get("degraded")),
        coalesced=body.get("coalesced_with") is not None,
        job_id=body.get("job_id"),
        trace_id=body.get("trace_id") or result.get("trace_id"),
    )


def run_closed_loop(
    submit,
    sampler: RequestSampler,
    concurrency: int,
    total_requests: int,
    duration_seconds: float | None = None,
) -> tuple[list[RequestOutcome], float]:
    """Fixed-concurrency traffic: each worker issues back-to-back.

    Stops after ``total_requests`` (or the optional duration cap,
    whichever comes first) and returns the outcomes plus wall time.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    outcomes: list[RequestOutcome] = []
    lock = threading.Lock()
    remaining = [total_requests]
    started = time.perf_counter()
    deadline = None if duration_seconds is None else started + duration_seconds

    def worker() -> None:
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                if deadline is not None and time.perf_counter() >= deadline:
                    return
                remaining[0] -= 1
            cell_id, payload = sampler.next_request()
            outcome = issue_request(submit, cell_id, payload)
            with lock:
                outcomes.append(outcome)

    threads = [
        threading.Thread(target=worker, daemon=True, name=f"npb-loadgen-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes, time.perf_counter() - started


def run_open_loop(
    submit,
    sampler: RequestSampler,
    rate_rps: float,
    duration_seconds: float,
) -> tuple[list[RequestOutcome], float]:
    """Open-loop Poisson traffic: arrivals never wait for completions.

    One thread per in-flight request; the arrival clock keeps ticking
    however slow the service gets, which is what makes queue growth and
    shedding (429) visible instead of silently throttling the offered
    load.
    """
    if rate_rps <= 0:
        raise ValueError("rate must be > 0 requests/second")
    outcomes: list[RequestOutcome] = []
    lock = threading.Lock()
    threads: list[threading.Thread] = []
    started = time.perf_counter()
    offset = sampler.arrival_gap(rate_rps)
    while offset <= duration_seconds:
        gap = started + offset - time.perf_counter()
        if gap > 0:
            time.sleep(gap)
        cell_id, payload = sampler.next_request()

        def one(cell_id=cell_id, payload=payload) -> None:
            outcome = issue_request(submit, cell_id, payload)
            with lock:
                outcomes.append(outcome)

        thread = threading.Thread(target=one, daemon=True)
        thread.start()
        threads.append(thread)
        offset += sampler.arrival_gap(rate_rps)
    for thread in threads:
        thread.join()
    return outcomes, time.perf_counter() - started


def summarize_outcomes(
    outcomes: list[RequestOutcome], elapsed_seconds: float
) -> dict:
    """Aggregate one step's outcomes into the recorded metrics."""
    counts = {
        "total": len(outcomes),
        "ok": 0,
        "executed": 0,
        "cached": 0,
        "coalesced": 0,
        "rejected_429": 0,
        "failed": 0,
        "unreachable": 0,
        "degraded": 0,
    }
    ok_latencies: list[float] = []
    by_cell: dict[str, dict] = {}
    by_shard: dict[str, int] = {}
    for outcome in outcomes:
        cell = by_cell.setdefault(
            outcome.cell_id,
            {"requests": 0, "ok": 0, "cached": 0, "latencies": []},
        )
        cell["requests"] += 1
        if outcome.degraded:
            counts["degraded"] += 1
        if outcome.shard is not None:
            by_shard[outcome.shard] = by_shard.get(outcome.shard, 0) + 1
        if outcome.status == "ok":
            counts["ok"] += 1
            cell["ok"] += 1
            ok_latencies.append(outcome.latency_seconds)
            cell["latencies"].append(outcome.latency_seconds)
            if outcome.cache_hit:
                counts["cached"] += 1
                cell["cached"] += 1
            elif outcome.coalesced:
                # Attached to an in-flight job: no execution paid for
                # this request, but no cache hit either.
                counts["coalesced"] += 1
            else:
                counts["executed"] += 1
        elif outcome.status == "rejected":
            counts["rejected_429"] += 1
        elif outcome.status == "unreachable":
            counts["unreachable"] += 1
        else:
            counts["failed"] += 1
    for cell in by_cell.values():
        latencies = cell.pop("latencies")
        cell["p50_seconds"] = median(latencies) if latencies else None
    total = max(counts["total"], 1)
    latency = None
    if ok_latencies:
        latency = {
            "samples": len(ok_latencies),
            "p50": percentile(ok_latencies, 50),
            "p95": percentile(ok_latencies, 95),
            "p99": percentile(ok_latencies, 99),
            "mean": sum(ok_latencies) / len(ok_latencies),
            "min": min(ok_latencies),
            "max": max(ok_latencies),
            "mad": mad(ok_latencies),
        }
    return {
        "elapsed_seconds": elapsed_seconds,
        "requests": counts,
        "latency_seconds": latency,
        "throughput_rps": counts["ok"] / max(elapsed_seconds, 1e-9),
        "cache_hit_ratio": counts["cached"] / max(counts["ok"], 1),
        # Share of successful requests that cost no execution at all:
        # cache hits plus in-flight coalesced attachments.
        "dedup_ratio": (
            (counts["cached"] + counts["coalesced"]) / max(counts["ok"], 1)
        ),
        "rate_429": counts["rejected_429"] / total,
        "error_rate": (counts["failed"] + counts["unreachable"]) / total,
        "by_cell": by_cell,
        "by_shard": by_shard,
    }


# ===================================================================== #
# SLO verdict
# ===================================================================== #


@dataclass(frozen=True)
class SLOPolicy:
    """Bounds a step's metrics must satisfy for the verdict to pass."""

    #: fraction of requests allowed to fail or find no service
    max_error_rate: float = 0.0
    #: fraction of requests allowed to stay rejected after retries --
    #: shedding is legitimate backpressure, but a mostly-shedding run
    #: is not serving its load
    max_429_rate: float = 0.5
    #: p95 latency bound in seconds (None: not checked)
    max_p95_seconds: float | None = None
    #: minimum cache-hit ratio (None: not checked)
    min_cache_hit_ratio: float | None = None
    #: minimum dedup ratio -- cached + coalesced over ok (None: not
    #: checked); the async-front-end CI gate pins this
    min_dedup_ratio: float | None = None
    #: at least this many requests must complete ok
    min_ok: int = 1

    def as_dict(self) -> dict:
        return {
            "max_error_rate": self.max_error_rate,
            "max_429_rate": self.max_429_rate,
            "max_p95_seconds": self.max_p95_seconds,
            "min_cache_hit_ratio": self.min_cache_hit_ratio,
            "min_dedup_ratio": self.min_dedup_ratio,
            "min_ok": self.min_ok,
        }


def evaluate_slo(metrics: dict, policy: SLOPolicy) -> dict:
    """Check one step's metrics against the policy bounds."""
    checks = [
        {
            "name": "error_rate",
            "value": metrics["error_rate"],
            "bound": policy.max_error_rate,
            "pass": metrics["error_rate"] <= policy.max_error_rate,
        },
        {
            "name": "rate_429",
            "value": metrics["rate_429"],
            "bound": policy.max_429_rate,
            "pass": metrics["rate_429"] <= policy.max_429_rate,
        },
        {
            "name": "min_ok",
            "value": metrics["requests"]["ok"],
            "bound": policy.min_ok,
            "pass": metrics["requests"]["ok"] >= policy.min_ok,
        },
    ]
    if policy.max_p95_seconds is not None:
        p95 = (metrics["latency_seconds"] or {}).get("p95")
        checks.append(
            {
                "name": "p95_seconds",
                "value": p95,
                "bound": policy.max_p95_seconds,
                "pass": p95 is not None and p95 <= policy.max_p95_seconds,
            }
        )
    if policy.min_cache_hit_ratio is not None:
        checks.append(
            {
                "name": "cache_hit_ratio",
                "value": metrics["cache_hit_ratio"],
                "bound": policy.min_cache_hit_ratio,
                "pass": (
                    metrics["cache_hit_ratio"] >= policy.min_cache_hit_ratio
                ),
            }
        )
    if policy.min_dedup_ratio is not None:
        checks.append(
            {
                "name": "dedup_ratio",
                "value": metrics["dedup_ratio"],
                "bound": policy.min_dedup_ratio,
                "pass": metrics["dedup_ratio"] >= policy.min_dedup_ratio,
            }
        )
    return {"pass": all(check["pass"] for check in checks), "checks": checks}


# ===================================================================== #
# full runs and the LOADGEN_<seq>.json trajectory
# ===================================================================== #


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything a run needs beyond the target URL."""

    profile: TrafficProfile
    mode: str = "closed"  # "closed" | "open"
    #: concurrency levels (closed) or arrival rates in rps (open); one
    #: record step -- one point on the scaling curve -- per level
    levels: tuple[float, ...] = (2,)
    requests_per_step: int = 20
    duration_seconds: float | None = None
    seed: int = 0
    #: 429 retries per request (Retry-After honored by ServiceClient)
    retries: int = 3
    #: tenant id stamped on every request (X-NPB-Tenant); None = none
    tenant: str | None = None
    #: trace every request and surface the slowest one per step; the
    #: span overhead makes this a diagnosis mode, not a bench default
    trace: bool = False
    slo: SLOPolicy = field(default_factory=SLOPolicy)

    def as_dict(self) -> dict:
        return {
            "profile": self.profile.as_dict(),
            "mode": self.mode,
            "levels": list(self.levels),
            "requests_per_step": self.requests_per_step,
            "duration_seconds": self.duration_seconds,
            "seed": self.seed,
            "retries": self.retries,
            "tenant": self.tenant,
            "trace": self.trace,
            "slo": self.slo.as_dict(),
        }


def run_step(submit, config: LoadgenConfig, index: int) -> dict:
    """Run one curve step (one level) and summarize it."""
    level = config.levels[index]
    sampler = RequestSampler(config.profile, seed=config.seed + index)
    if config.mode == "closed":
        outcomes, elapsed = run_closed_loop(
            submit,
            sampler,
            concurrency=int(level),
            total_requests=config.requests_per_step,
            duration_seconds=config.duration_seconds,
        )
    elif config.mode == "open":
        if config.duration_seconds is None:
            raise ValueError("open-loop mode needs duration_seconds")
        outcomes, elapsed = run_open_loop(
            submit,
            sampler,
            rate_rps=float(level),
            duration_seconds=config.duration_seconds,
        )
    else:
        raise ValueError(f"unknown loadgen mode {config.mode!r}")
    metrics = summarize_outcomes(outcomes, elapsed)
    metrics["mode"] = config.mode
    metrics["level"] = level
    metrics["slo"] = evaluate_slo(metrics, config.slo)
    if config.trace:
        metrics["slowest_trace"] = slowest_traced_request(outcomes)
    return metrics


def slowest_traced_request(outcomes: list[RequestOutcome]) -> dict | None:
    """The slowest traced ok request of a step -- the one worth reading.

    Every request of a ``--trace`` step carries a trace; surfacing the
    slowest one's ids lets ``npb trace <job_id>`` answer "where did the
    p100 go" without hunting through the span store.
    """
    traced = [
        outcome
        for outcome in outcomes
        if outcome.status == "ok" and outcome.trace_id is not None
    ]
    if not traced:
        return None
    slowest = max(traced, key=lambda outcome: outcome.latency_seconds)
    return {
        "job_id": slowest.job_id,
        "trace_id": slowest.trace_id,
        "latency_seconds": slowest.latency_seconds,
    }


def run_loadgen(
    url: str,
    config: LoadgenConfig,
    timeout: float = 600.0,
    progress=None,
) -> dict:
    """Run the whole curve against ``url`` and build the record.

    Raises :class:`ServiceUnavailable` if the service cannot even answer
    /status before the run starts (so an absent daemon is a usage error,
    not a 100%-unreachable 'result').
    """
    from repro.harness.bench import environment_fingerprint

    client = ServiceClient(url, timeout=timeout)
    client.status()  # reachability gate; raises ServiceUnavailable
    headers = (
        None if config.tenant is None else {"X-NPB-Tenant": config.tenant}
    )

    def submit(payload: dict) -> tuple[int, dict]:
        if config.trace:
            payload = dict(payload, trace=True)
        return client.submit(payload, retries=config.retries, headers=headers)

    steps = []
    for index, level in enumerate(config.levels):
        if progress is not None:
            progress(
                f"  loadgen {config.mode} level={level:g} "
                f"({config.profile.name}, step {index + 1}/"
                f"{len(config.levels)})"
            )
        steps.append(run_step(submit, config, index))
    return {
        "kind": RECORD_KIND,
        "schema_version": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": environment_fingerprint(),
        "url": url,
        "config": config.as_dict(),
        "curve": steps,
        "slo_pass": all(step["slo"]["pass"] for step in steps),
    }


def next_sequence(directory: str = ".") -> int:
    """1 + the highest LOADGEN_<seq>.json already in ``directory``."""
    return records.next_sequence(directory, "LOADGEN")


def write_record(
    record: dict, directory: str = ".", path: str | None = None
) -> str:
    """Write ``record``; default name continues the trajectory sequence.

    Sequence numbers are claimed atomically (``O_EXCL`` create-and-retry
    in :mod:`repro.harness.records`), so two runs appending to the same
    directory concurrently never overwrite each other's record.
    """
    if path is None:
        return records.append_record(record, directory, "LOADGEN")
    return records.write_json_record(record, path)


def latest_record_path(directory: str = ".") -> str | None:
    """Path of the highest-sequence LOADGEN_<seq>.json, if any."""
    best = None
    best_seq = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    for name in names:
        match = RECORD_PATTERN.match(name)
        if match and int(match.group(1)) >= best_seq:
            best_seq = int(match.group(1))
            best = os.path.join(directory, name)
    return best


def load_record(path: str) -> dict:
    """Load and sanity-check one loadgen record."""
    with open(path) as fh:
        record = json.load(fh)
    if not isinstance(record, dict) or record.get("kind") != RECORD_KIND:
        raise ValueError(f"{path}: not an {RECORD_KIND} file")
    version = record.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} (this tool reads "
            f"<= {SCHEMA_VERSION}); refresh the record with 'npb loadgen'"
        )
    return _migrate_record(record, version)


def _migrate_record(record: dict, version: int) -> dict:
    """Upgrade an older-schema record in memory (never rewritten on disk)."""
    if version < 2:
        # v1 predates in-flight coalescing: the cache was the only dedup
        # layer, so zero coalesced and dedup_ratio == cache_hit_ratio is
        # the faithful migration.
        for step in record.get("curve", []):
            step.get("requests", {}).setdefault("coalesced", 0)
            step.setdefault("dedup_ratio", step.get("cache_hit_ratio", 0.0))
    if version < SCHEMA_VERSION:
        record["schema_version"] = SCHEMA_VERSION
    return record


# ===================================================================== #
# comparator (the noise-aware SLO gate)
# ===================================================================== #


def _step_threshold(
    base: dict,
    cand: dict,
    tolerance: float,
    mad_multiplier: float,
    abs_slack: float,
) -> float:
    """Relative change a step may show before it counts as a regression.

    Same philosophy as the bench comparator
    (:func:`repro.harness.bench.cell_threshold`): the static tolerance,
    widened by the measured latency scatter (MAD over the per-request
    samples) of whichever record is noisier, widened again for steps so
    fast that scheduler jitter dwarfs them.
    """
    base_p50 = max(float((base.get("latency_seconds") or {}).get("p50", 0.0)), 1e-9)
    noise = max(
        float((base.get("latency_seconds") or {}).get("mad", 0.0)),
        float((cand.get("latency_seconds") or {}).get("mad", 0.0)),
    )
    return max(
        tolerance,
        mad_multiplier * noise / base_p50,
        abs_slack / base_p50,
    )


def compare_records(
    baseline: dict,
    candidate: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    mad_multiplier: float = DEFAULT_MAD_MULTIPLIER,
    abs_slack: float = DEFAULT_ABS_SLACK,
) -> dict:
    """Match curve steps by (mode, level) and verdict each metric.

    Latency percentiles regress upward, throughput regresses downward;
    both share one noise-aware threshold per step.  The overall verdict
    also fails when the candidate's own SLO failed -- a faster run that
    drops requests is not an improvement.
    """
    base_steps = {
        (step["mode"], step["level"]): step for step in baseline["curve"]
    }
    cand_steps = {
        (step["mode"], step["level"]): step for step in candidate["curve"]
    }
    steps = []
    regressions = 0
    for key, base in base_steps.items():
        cand = cand_steps.get(key)
        if cand is None:
            continue
        threshold = _step_threshold(
            base, cand, tolerance, mad_multiplier, abs_slack
        )
        metrics = []
        for name in ("p50", "p95", "p99"):
            base_value = (base.get("latency_seconds") or {}).get(name)
            cand_value = (cand.get("latency_seconds") or {}).get(name)
            if base_value is None or cand_value is None:
                continue
            ratio = cand_value / max(base_value, 1e-9)
            if ratio > 1.0 + threshold:
                verdict = "regression"
            elif ratio < 1.0 - threshold:
                verdict = "improved"
            else:
                verdict = "ok"
            metrics.append(
                {
                    "metric": f"latency_{name}",
                    "base": base_value,
                    "candidate": cand_value,
                    "ratio": ratio,
                    "verdict": verdict,
                }
            )
        base_rps = float(base["throughput_rps"])
        cand_rps = float(cand["throughput_rps"])
        ratio = cand_rps / max(base_rps, 1e-9)
        if ratio < 1.0 / (1.0 + threshold):
            verdict = "regression"
        elif ratio > 1.0 + threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        metrics.append(
            {
                "metric": "throughput_rps",
                "base": base_rps,
                "candidate": cand_rps,
                "ratio": ratio,
                "verdict": verdict,
            }
        )
        step_regressions = sum(
            1 for metric in metrics if metric["verdict"] == "regression"
        )
        if not cand["slo"]["pass"]:
            step_regressions += 1
        regressions += step_regressions
        steps.append(
            {
                "mode": key[0],
                "level": key[1],
                "threshold": threshold,
                "slo_pass": cand["slo"]["pass"],
                "metrics": metrics,
                "regressions": step_regressions,
            }
        )
    return {
        "steps": steps,
        "missing": sorted(
            f"{mode}@{level:g}"
            for mode, level in base_steps
            if (mode, level) not in cand_steps
        ),
        "added": sorted(
            f"{mode}@{level:g}"
            for mode, level in cand_steps
            if (mode, level) not in base_steps
        ),
        "regressions": regressions,
        "verdict": "regression" if regressions else "pass",
    }
