"""Tests for the Java Grande kernels and the discrepancy study."""

import numpy as np
import pytest

from repro.jgf import (
    JGF_KERNELS,
    jgf_ratio_band,
    make_sparse_system,
    measured_ratios,
    series_loops,
    series_numpy,
    sor_loops,
    sor_numpy,
    sparsematmult_loops,
    sparsematmult_numpy,
)
from repro.jgf.sor import sor_residual
from repro.machines import machine
from repro.machines.simulator import predict_benchmark


class TestSeries:
    def test_styles_agree(self):
        fast = series_numpy(8)
        slow = np.asarray(series_loops(8))
        assert np.allclose(fast, slow, atol=1e-12)

    def test_first_coefficient_is_mean(self):
        # a_0 = (1/2) * integral of (x+1)^x over [0,2]; integrand >= 1,
        # so a_0 in (1, max value) -- and trapezoid vs fine quadrature.
        x = np.linspace(0, 2, 100_001)
        reference = np.trapezoid((x + 1) ** x, x) / 2.0
        assert series_numpy(1)[0, 0] == pytest.approx(reference, rel=1e-5)

    def test_coefficients_decay(self):
        coeffs = series_numpy(16)
        magnitudes = np.hypot(coeffs[1:, 0], coeffs[1:, 1])
        assert magnitudes[-1] < magnitudes[0]

    def test_b0_is_zero(self):
        assert series_numpy(3)[0, 1] == 0.0


class TestSOR:
    def test_styles_agree_bitwise(self):
        rng = np.random.default_rng(0)
        grid = rng.random((20, 20))
        fast = sor_numpy(grid, 10)
        slow = sor_loops(grid, 10)
        assert np.array_equal(fast, slow)

    def test_boundary_untouched(self):
        rng = np.random.default_rng(1)
        grid = rng.random((16, 16))
        relaxed = sor_numpy(grid, 5)
        assert np.array_equal(relaxed[0], grid[0])
        assert np.array_equal(relaxed[:, -1], grid[:, -1])

    def test_residual_decreases(self):
        rng = np.random.default_rng(2)
        grid = rng.random((32, 32))
        r0 = sor_residual(grid)
        r1 = sor_residual(sor_numpy(grid, 50))
        assert r1 < 0.5 * r0

    def test_input_not_modified(self):
        rng = np.random.default_rng(3)
        grid = rng.random((10, 10))
        copy = grid.copy()
        sor_numpy(grid, 3)
        assert np.array_equal(grid, copy)


class TestSparseMatmult:
    def test_styles_agree(self):
        system = make_sparse_system(500)
        fast = sparsematmult_numpy(*system, iterations=7)
        slow = sparsematmult_loops(*system, iterations=7)
        assert np.allclose(fast, slow, rtol=1e-12)

    def test_linear_in_iterations(self):
        system = make_sparse_system(300)
        one = sparsematmult_numpy(*system, iterations=1)
        five = sparsematmult_numpy(*system, iterations=5)
        assert np.allclose(five, 5 * one, rtol=1e-12)

    def test_matches_dense(self):
        rows, cols, vals, x = make_sparse_system(50)
        dense = np.zeros((50, 50))
        np.add.at(dense, (rows, cols), vals)
        assert np.allclose(sparsematmult_numpy(rows, cols, vals, x, 1),
                           dense @ x, atol=1e-12)


class TestDiscrepancyStudy:
    def test_jgf_band_below_npb_structured_band(self):
        """The paper's resolution: on the same modeled JVM, the JGF mix
        sits far below the NPB structured-grid mix."""
        o2k = machine("origin2000")
        jgf_lo, jgf_hi = jgf_ratio_band(o2k)
        npb = [predict_benchmark(o2k, n, "A", "java", 0).seconds
               / predict_benchmark(o2k, n, "A", "f77", 0).seconds
               for n in ("BT", "SP", "LU", "FT", "MG")]
        assert jgf_hi < min(npb)

    def test_jgf_band_about_factor_two(self):
        """The Java Grande finding itself ("on almost all [kernels]
        within a factor of 2") on the better JVM of the study era --
        'almost all' grants the memory-bound SOR its slight excess."""
        lo, hi = jgf_ratio_band(machine("p690"))
        assert lo < 2.0
        assert hi <= 2.3

    def test_all_kernels_classified(self):
        assert set(JGF_KERNELS) == {"series", "sor", "sparsematmult",
                                    "lufact"}
        for kernel in JGF_KERNELS.values():
            assert sum(kernel.op_mix.values()) == pytest.approx(1.0)

    def test_measured_ratios_positive(self):
        ratios = measured_ratios(scale=0.2)
        assert set(ratios) == {"series", "sor", "sparsematmult"}
        assert all(r > 1.0 for r in ratios.values())
