"""Property tests on the MG grid-transfer operators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mg.operators import comm3, interp, rprj3
from repro.team import SerialTeam


def _random_periodic(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.random((n, n, n))
    comm3(x)
    return x


class TestTransferAdjointness:
    def test_interp_reproduces_affine_functions(self):
        """Trilinear prolongation is exact on affine functions: fine
        values must equal the function evaluated at fine coordinates."""
        team = SerialTeam()
        mm = 6
        n = 2 * mm - 2
        c3, c2, c1 = np.meshgrid(np.arange(mm), np.arange(mm),
                                 np.arange(mm), indexing="ij")

        def f(z, y, x):
            return 1.5 + 0.25 * x - 0.75 * y + 0.5 * z

        coarse = f(c3.astype(float), c2.astype(float), c1.astype(float))
        fine = np.zeros((n, n, n))
        interp(team, coarse, fine)
        f3, f2, f1 = np.meshgrid(np.arange(n - 1), np.arange(n - 1),
                                 np.arange(n - 1), indexing="ij")
        expected = f(f3 / 2.0, f2 / 2.0, f1 / 2.0)
        assert np.allclose(fine[:-1, :-1, :-1], expected, atol=1e-12)

    def test_interp_preserves_constants(self):
        team = SerialTeam()
        coarse = np.full((6, 6, 6), 2.5)
        fine = np.zeros((10, 10, 10))
        interp(team, coarse, fine)
        # every written fine point receives exactly the constant
        assert np.allclose(fine[:-1, :-1, :-1], 2.5)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_restriction_linear(self, seed):
        team = SerialTeam()
        a = _random_periodic(10, seed)
        b = _random_periodic(10, seed + 1)
        ra = np.zeros((6, 6, 6))
        rb = np.zeros((6, 6, 6))
        rab = np.zeros((6, 6, 6))
        rprj3(team, a, ra)
        rprj3(team, b, rb)
        rprj3(team, 2.0 * a + 3.0 * b, rab)
        assert np.allclose(rab, 2.0 * ra + 3.0 * rb, atol=1e-12)
