"""Abstract Team interface and the shared dispatch core.

A *team* is one master plus ``nworkers`` workers.  Benchmarks express their
parallel structure exclusively through this interface so that the same code
runs under all backends:

``parallel_for(n, fn, *args)``
    The workhorse.  ``range(n)`` (the outermost grid dimension, as in the
    OpenMP NPB) is block-partitioned; each worker calls
    ``fn(lo, hi, *args)`` on its block.  Returns the list of per-worker
    return values in rank order, which is how reductions are expressed
    (each worker returns its partial, the master combines).  The return of
    ``parallel_for`` is a full barrier: all workers have finished.

``run_on_all(fn, *args)``
    Every worker calls ``fn(rank, nworkers, *args)`` once -- used for
    worker-private setup such as the paper's CG "initialization load"
    warm-up fix.

``shared(shape, dtype)``
    Allocate an array visible to master and all workers.  Plain ``np.zeros``
    for serial/threads; POSIX shared memory for the process backend.

For the process backend, ``fn`` must be a module-level (picklable) function
and array arguments must be team-shared arrays; the serial and thread
backends accept anything callable.  Benchmarks in this suite follow the
stricter convention throughout.

Dispatch core
-------------
``Team`` itself owns everything the three backends used to duplicate:
closed-team checks, slab-bound computation (memoized in an
:class:`~repro.runtime.plan.ExecutionPlan`), rank-ordered result
collection, error propagation, and per-dispatch instrumentation (a
:class:`~repro.runtime.region.RegionRecorder`).  Subclasses implement one
hook, :meth:`_transport`, which delivers one ``fn(a, b, *args)`` task per
worker and returns the per-worker :class:`~repro.runtime.dispatch.WorkerReply`
list -- inline call (serial), condition-variable hand-off (threads), or
process pipe (process).  Every transport runs its task through
:func:`~repro.runtime.dispatch.execute_task` (the process workers
replicate it), which opens a new :mod:`~repro.runtime.arena` generation
on the executing worker before the task -- the hand-off that lets fused
kernels reuse per-worker scratch buffers dispatch after dispatch.  When
``tracemalloc`` is tracing, the core also wraps each dispatch in an
allocation probe and charges the ``alloc_bytes``/``alloc_blocks`` deltas
to the current region.

Fault tolerance
---------------
The core also owns the recovery state machine (see
:mod:`repro.runtime.dispatch` for the fault model).  A transport may
raise :class:`~repro.runtime.dispatch.TransportFailure` when workers die
or stop responding; the core records a
:class:`~repro.runtime.dispatch.FaultEvent`, asks the backend to respawn
the affected workers (:meth:`_try_recover`, with bounded linear
backoff), and re-dispatches the whole bounds set -- sound because every
task in the suite is an idempotent slab computation.  When
``FaultPolicy.max_retries`` is exhausted (or the backend cannot
recover), the team permanently *degrades*: every slab of every later
dispatch runs inline on the master with the same bounds, so results stay
bit-identical while the dead transport is bypassed.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Callable, Sequence

import numpy as np

from repro.kernels.registry import (DEFAULT_TIER, resolve as resolve_kernel,
                                    validate_tier)
from repro.obs.trace import current_trace, tracing_active
from repro.runtime.arena import (allocation_probe_start,
                                 allocation_probe_stop, arena_rewind_task)
from repro.runtime.dispatch import (FaultEvent, FaultPolicy,
                                    TransportFailure, WorkerReply,
                                    execute_task, raise_reply_error)
from repro.runtime.plan import Bounds, ExecutionPlan
from repro.runtime.region import RegionRecorder


class Team(ABC):
    """One master plus ``nworkers`` workers executing slab tasks."""

    #: backend name, set by subclasses
    backend: str = "abstract"

    def __init__(self, nworkers: int, policy: FaultPolicy | None = None,
                 kernel_backend: str = DEFAULT_TIER):
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self._nworkers = nworkers
        #: fault-tolerance knobs (timeout, retries, backoff)
        self.policy = policy if policy is not None else FaultPolicy()
        #: memoized slab partitions for this worker count; also carries
        #: the selected kernel tier (resolved at dispatch time)
        self.plan = ExecutionPlan(nworkers,
                                  kernel_backend=validate_tier(kernel_backend))
        #: kernel name -> resolved callable for the current tier
        self._kernel_fns: dict[str, Callable] = {}
        #: per-region dispatch/execute/barrier accounting
        self.recorder = RegionRecorder(nworkers)
        #: per-region trace accumulation (region extents + per-worker
        #: activity), only populated while a sampled trace is active --
        #: see :meth:`take_trace`
        self._trace: "OrderedDict[str, dict]" = OrderedDict()
        self._closed = False
        self._degraded = False

    @property
    def nworkers(self) -> int:
        """Number of workers (1 for the serial backend)."""
        return self._nworkers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def degraded(self) -> bool:
        """True once retries were exhausted and dispatch runs inline."""
        return self._degraded

    # ------------------------------------------------------------------ #
    # transport hook

    @abstractmethod
    def _transport(self, fn: Callable, bounds: Bounds,
                   args: tuple) -> list[WorkerReply]:
        """Deliver ``fn(a, b, *args)`` to every worker; gather replies.

        ``bounds[rank]`` is worker ``rank``'s ``(a, b)`` pair -- slab
        bounds for ``parallel_for``, ``(rank, nworkers)`` for
        ``run_on_all``.  Must return one reply per worker, rank order,
        only after all workers finished (this is the barrier).  Worker
        exceptions are captured into replies, never raised here; a
        :class:`TransportFailure` (worker death / dispatch deadline) is
        raised and handled by the core's recovery loop.
        """

    def _try_recover(self, failure: TransportFailure, attempt: int) -> bool:
        """Restore transport health after ``failure`` (respawn workers).

        Called between retries with ``attempt`` starting at 1; returns
        True when the affected workers were replaced and the dispatch may
        be retried, False when the backend cannot recover (the core then
        degrades).  The default cannot recover.
        """
        return False

    # ------------------------------------------------------------------ #
    # dispatch core (shared bookkeeping + recovery state machine)

    def _fault(self, kind: str, rank: int | None = None,
               detail: str = "") -> FaultEvent:
        """Record one structured fault event against the current region."""
        event = FaultEvent(kind=kind, backend=self.backend,
                           region=self.recorder.current_region,
                           rank=rank, detail=detail)
        self.recorder.record_fault(event)
        return event

    def _run_inline(self, fn: Callable, bounds: Bounds,
                    args: tuple) -> list[WorkerReply]:
        """Degraded-mode transport: every slab inline on the master.

        Same bounds, same rank order, so results are bit-identical to a
        healthy dispatch -- only the parallelism is gone.  Every slab
        runs through :func:`~repro.runtime.dispatch.execute_task`, so
        each one opens a fresh arena generation on the master exactly as
        it would on its own worker.
        """
        return [execute_task(rank, fn, a, b, args)
                for rank, (a, b) in enumerate(bounds)]

    def _dispatch(self, fn: Callable, bounds: Bounds,
                  args: tuple) -> list[Any]:
        if self._closed:
            raise RuntimeError("team is closed")
        attempts = 0
        while True:
            published_at = time.perf_counter()
            probe = allocation_probe_start()
            if self._degraded:
                replies = self._run_inline(fn, bounds, args)
            else:
                try:
                    replies = self._transport(fn, bounds, args)
                except TransportFailure as failure:
                    attempts += 1
                    for rank in failure.ranks or (None,):
                        self._fault(failure.kind, rank=rank,
                                    detail=str(failure))
                    recovered = False
                    if attempts <= self.policy.max_retries:
                        try:
                            recovered = self._try_recover(failure, attempts)
                        except Exception as exc:
                            self._fault("respawn_failed",
                                        detail=f"{type(exc).__name__}: {exc}")
                    if not recovered:
                        self._fault(
                            "degrade",
                            detail=f"inline serial fallback after "
                                   f"{attempts} failed attempt(s): {failure}")
                        self._degraded = True
                    continue
            done_at = time.perf_counter()
            self.recorder.record(published_at, done_at, replies,
                                 allocation_probe_stop(probe))
            # Tracing fast path: one global load + branch when off.  The
            # contextvar is only consulted once some thread in the
            # process holds a sampled trace, so untraced dispatch stays
            # within the bench_trace_overhead.py budget.
            if tracing_active():
                ctx = current_trace()
                if ctx is not None and ctx.sampled:
                    self._trace_accumulate(published_at, done_at, replies)
            for reply in replies:
                if not reply.ok:
                    raise_reply_error(reply)
            return [reply.value for reply in replies]

    def _trace_accumulate(self, published_at: float, done_at: float,
                          replies: list[WorkerReply]) -> None:
        """Fold one traced dispatch into the per-region trace state.

        Bounded by (regions x workers), not by dispatch count: a CG run
        issues thousands of dispatches, so per-dispatch spans would
        swamp any store.  Instead each region keeps its extent (first
        publish -> last completion, ``perf_counter`` stamps) and each
        worker its extent + cumulative busy time within the region.
        The worker stamps come from the replies, i.e. from *inside the
        worker* -- for ProcessTeam that is the forked child's own clock
        (CLOCK_MONOTONIC, shared epoch across fork), which is what lets
        worker spans surface in the parent process without any pipe-
        protocol change.
        """
        region = self.recorder.current_region
        entry = self._trace.get(region)
        if entry is None:
            entry = self._trace[region] = {
                "first": published_at, "last": done_at,
                "calls": 0, "workers": {},
            }
        entry["last"] = done_at
        entry["calls"] += 1
        workers = entry["workers"]
        for reply in replies:
            stats = workers.get(reply.rank)
            if stats is None:
                stats = workers[reply.rank] = {
                    "first": reply.started_at, "last": reply.finished_at,
                    "busy": 0.0, "calls": 0, "errors": 0,
                }
            stats["first"] = min(stats["first"], reply.started_at)
            stats["last"] = max(stats["last"], reply.finished_at)
            stats["busy"] += reply.finished_at - reply.started_at
            stats["calls"] += 1
            if not reply.ok:
                stats["errors"] += 1

    def take_trace(self) -> "OrderedDict[str, dict]":
        """Drain the per-region trace accumulation (see ``_trace``).

        The scheduler calls this once per traced run to build region +
        worker spans; draining (rather than reading) keeps a pooled
        team's next job from inheriting this job's trace state even if
        the owner forgets to :meth:`reset`.
        """
        trace, self._trace = self._trace, OrderedDict()
        return trace

    # ------------------------------------------------------------------ #
    # kernel-tier selection (see repro.kernels.registry)

    @property
    def kernel_backend(self) -> str:
        """The selected kernel tier (``reference``/``fused``/``compiled``).

        This is the *requested* tier; an unavailable tier (compiled
        without numba) silently serves the best fallback per kernel --
        ``npb backends`` reports what actually serves.
        """
        return self.plan.kernel_backend

    def set_kernel_backend(self, tier: str) -> None:
        """Re-select the kernel tier on a live team.

        Pooled teams outlive a single job, so the scheduler swaps the
        tier per job the same way it swaps the fault policy; the resolved-
        kernel cache is dropped so the next dispatch re-resolves.
        """
        self.plan.kernel_backend = validate_tier(tier)
        self._kernel_fns.clear()

    def _resolve_kernel(self, kernel: str) -> Callable:
        fn = self._kernel_fns.get(kernel)
        if fn is None:
            fn = resolve_kernel(kernel, self.plan.kernel_backend).fn
            self._kernel_fns[kernel] = fn
        return fn

    def parallel_kernel(self, kernel: str, n: int, *args: Any) -> list[Any]:
        """``parallel_for`` over a *named* registered kernel.

        The registry resolves ``kernel`` at the team's selected tier
        (with fallback) to a module-level callable -- picklable by
        qualified name, so the process backend ships it like any other
        slab function.  Resolution is memoized per team until the tier
        changes.
        """
        return self._dispatch(self._resolve_kernel(kernel),
                              self.plan.bounds(n), args)

    def reduce_kernel(self, kernel: str, n: int, *args: Any) -> float:
        """Sum of per-worker partials from a named registered kernel."""
        return float(sum(self.parallel_kernel(kernel, n, *args)))

    def parallel_for(self, n: int, fn: Callable, *args: Any) -> list[Any]:
        """Block-partition ``range(n)``; worker ``r`` runs ``fn(lo_r, hi_r, *args)``.

        Implicit barrier on return.  Returns per-worker results in rank order.
        """
        return self._dispatch(fn, self.plan.bounds(n), args)

    def run_on_all(self, fn: Callable, *args: Any) -> list[Any]:
        """Every worker runs ``fn(rank, nworkers, *args)`` once; barrier."""
        return self._dispatch(fn, self.plan.ranks, args)

    def shared(self, shape: Sequence[int] | int, dtype=np.float64) -> np.ndarray:
        """Allocate a zero-initialized array visible to all team members."""
        return np.zeros(shape, dtype=dtype)

    def reduce_sum(self, n: int, fn: Callable, *args: Any) -> float:
        """Sum of per-worker partials from ``fn(lo, hi, *args)``."""
        return float(sum(self.parallel_for(n, fn, *args)))

    def reset(self) -> None:
        """Prepare a live team for reuse by another benchmark run.

        Pooled teams (:class:`repro.service.pool.TeamPool`) run many
        benchmarks over one team lifetime; without a reset the second
        run's :class:`~repro.runtime.region.RegionRecorder` report and
        fault history would include the first run's events.  ``reset``
        restores the observable state a fresh team would have:

        * every worker's scratch arena opens a new generation
          (:func:`~repro.runtime.arena.arena_rewind_task`) -- pooled
          buffers are *kept*, because a warm arena is the state reuse
          exists to amortize;
        * the recorder drops all region stats, fault events, and any
          stale region stack (:meth:`RegionRecorder.reset`).

        The memoized :class:`~repro.runtime.plan.ExecutionPlan` survives
        (partitions depend only on the worker count).  A degraded team
        resets fine -- the rewind runs inline -- but stays degraded;
        pool owners should replace it rather than reuse it.
        """
        if self._closed:
            raise RuntimeError("team is closed")
        # Rewind arenas first: this dispatch would otherwise land in the
        # recorder stats the reset is about to guarantee are empty.
        self.run_on_all(arena_rewind_task)
        self.recorder.reset()
        self._trace.clear()

    def alive(self) -> bool:
        """Whether this team can still accept work right now.

        Pool owners use this as a pre-lease liveness probe: a pooled
        team can die while *idle* (a worker SIGKILLed between jobs),
        which the dispatch-time fault machinery would only discover
        mid-job.  Backends with real worker processes override this
        with a process liveness check; for in-process backends
        not-closed is the whole truth.
        """
        return not self._closed

    def close(self) -> None:
        """Shut workers down and release shared resources (idempotent).

        After ``close()`` every backend rejects further dispatches with
        ``RuntimeError``.  Subclasses must call ``super().close()``.
        """
        self._closed = True

    def __enter__(self) -> "Team":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def team_worker_counts(max_workers: int) -> list[int]:
    """Thread counts used in the paper's tables: 1, 2, 4, ... up to the limit."""
    counts = []
    w = 1
    while w <= max_workers:
        counts.append(w)
        w *= 2
    return counts
