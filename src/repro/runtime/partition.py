"""Block partitioning of loop ranges, as in the OpenMP NPB static schedule.

The OpenMP versions of the benchmarks (the prototype for the paper's Java
threading) distribute the outermost loop in contiguous blocks, giving the
first ``n mod p`` workers one extra iteration.  ``block_partition``
reproduces that layout.  :class:`~repro.runtime.plan.ExecutionPlan`
memoizes these bounds per extent; dispatch paths should go through a plan
rather than call these directly.
"""

from __future__ import annotations


def partition_bounds(n: int, nworkers: int, rank: int) -> tuple[int, int]:
    """Half-open bounds ``[lo, hi)`` of worker ``rank``'s block of ``range(n)``.

    Matches the OpenMP static schedule: block sizes differ by at most one,
    larger blocks first.  A worker with no iterations gets ``lo == hi``.
    """
    if nworkers <= 0:
        raise ValueError("nworkers must be positive")
    if not 0 <= rank < nworkers:
        raise ValueError(f"rank {rank} out of range for {nworkers} workers")
    if n < 0:
        raise ValueError("n must be non-negative")
    base, extra = divmod(n, nworkers)
    if rank < extra:
        lo = rank * (base + 1)
        hi = lo + base + 1
    else:
        lo = extra * (base + 1) + (rank - extra) * base
        hi = lo + base
    return lo, hi


def block_partition(n: int, nworkers: int) -> list[tuple[int, int]]:
    """All workers' blocks of ``range(n)``: a list of ``(lo, hi)`` pairs.

    The blocks tile ``range(n)`` exactly: consecutive, disjoint, complete.
    """
    return [partition_bounds(n, nworkers, rank) for rank in range(nworkers)]
