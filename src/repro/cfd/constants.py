"""The BT/SP constant soup (``set_constants`` in bt.f/sp.f).

A frozen dataclass so it pickles cheaply to process workers.  Names follow
the Fortran exactly; every derived constant is precomputed the same way the
Fortran does (product of previously-derived values), preserving rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CFDConstants:
    nx: int
    ny: int
    nz: int
    dt: float

    # everything below is derived in __post_init__
    c1: float = field(init=False, default=1.4)
    c2: float = field(init=False, default=0.4)
    c3: float = field(init=False, default=0.1)
    c4: float = field(init=False, default=1.0)
    c5: float = field(init=False, default=1.4)

    def __post_init__(self):
        s = object.__setattr__
        nx, ny, nz, dt = self.nx, self.ny, self.nz, self.dt
        s(self, "bt", math.sqrt(0.5))
        s(self, "dnxm1", 1.0 / (nx - 1))
        s(self, "dnym1", 1.0 / (ny - 1))
        s(self, "dnzm1", 1.0 / (nz - 1))
        s(self, "c1c2", self.c1 * self.c2)
        s(self, "c1c5", self.c1 * self.c5)
        s(self, "c3c4", self.c3 * self.c4)
        s(self, "c1345", self.c1c5 * self.c3c4)
        s(self, "conz1", 1.0 - self.c1c5)
        s(self, "tx1", 1.0 / (self.dnxm1 * self.dnxm1))
        s(self, "tx2", 1.0 / (2.0 * self.dnxm1))
        s(self, "tx3", 1.0 / self.dnxm1)
        s(self, "ty1", 1.0 / (self.dnym1 * self.dnym1))
        s(self, "ty2", 1.0 / (2.0 * self.dnym1))
        s(self, "ty3", 1.0 / self.dnym1)
        s(self, "tz1", 1.0 / (self.dnzm1 * self.dnzm1))
        s(self, "tz2", 1.0 / (2.0 * self.dnzm1))
        s(self, "tz3", 1.0 / self.dnzm1)
        for m in range(1, 6):
            s(self, f"dx{m}", 0.75)
            s(self, f"dy{m}", 0.75)
            s(self, f"dz{m}", 1.0)
        s(self, "dxmax", max(self.dx3, self.dx4))
        s(self, "dymax", max(self.dy2, self.dy4))
        s(self, "dzmax", max(self.dz2, self.dz3))
        s(self, "dssp", 0.25 * max(self.dx1, max(self.dy1, self.dz1)))
        s(self, "c4dssp", 4.0 * self.dssp)
        s(self, "c5dssp", 5.0 * self.dssp)
        s(self, "dttx1", dt * self.tx1)
        s(self, "dttx2", dt * self.tx2)
        s(self, "dtty1", dt * self.ty1)
        s(self, "dtty2", dt * self.ty2)
        s(self, "dttz1", dt * self.tz1)
        s(self, "dttz2", dt * self.tz2)
        s(self, "c2dttx1", 2.0 * self.dttx1)
        s(self, "c2dtty1", 2.0 * self.dtty1)
        s(self, "c2dttz1", 2.0 * self.dttz1)
        s(self, "dtdssp", dt * self.dssp)
        s(self, "comz1", self.dtdssp)
        s(self, "comz4", 4.0 * self.dtdssp)
        s(self, "comz5", 5.0 * self.dtdssp)
        s(self, "comz6", 6.0 * self.dtdssp)
        s(self, "c3c4tx3", self.c3c4 * self.tx3)
        s(self, "c3c4ty3", self.c3c4 * self.ty3)
        s(self, "c3c4tz3", self.c3c4 * self.tz3)
        for m in range(1, 6):
            s(self, f"dx{m}tx1", getattr(self, f"dx{m}") * self.tx1)
            s(self, f"dy{m}ty1", getattr(self, f"dy{m}") * self.ty1)
            s(self, f"dz{m}tz1", getattr(self, f"dz{m}") * self.tz1)
        s(self, "c2iv", 2.5)
        s(self, "con43", 4.0 / 3.0)
        s(self, "con16", 1.0 / 6.0)
        s(self, "xxcon1", self.c3c4tx3 * self.con43 * self.tx3)
        s(self, "xxcon2", self.c3c4tx3 * self.tx3)
        s(self, "xxcon3", self.c3c4tx3 * self.conz1 * self.tx3)
        s(self, "xxcon4", self.c3c4tx3 * self.con16 * self.tx3)
        s(self, "xxcon5", self.c3c4tx3 * self.c1c5 * self.tx3)
        s(self, "yycon1", self.c3c4ty3 * self.con43 * self.ty3)
        s(self, "yycon2", self.c3c4ty3 * self.ty3)
        s(self, "yycon3", self.c3c4ty3 * self.conz1 * self.ty3)
        s(self, "yycon4", self.c3c4ty3 * self.con16 * self.ty3)
        s(self, "yycon5", self.c3c4ty3 * self.c1c5 * self.ty3)
        s(self, "zzcon1", self.c3c4tz3 * self.con43 * self.tz3)
        s(self, "zzcon2", self.c3c4tz3 * self.tz3)
        s(self, "zzcon3", self.c3c4tz3 * self.conz1 * self.tz3)
        s(self, "zzcon4", self.c3c4tz3 * self.con16 * self.tz3)
        s(self, "zzcon5", self.c3c4tz3 * self.c1c5 * self.tz3)
