"""Compiled kernel tier: Numba ``njit`` scalar-loop micro-kernels.

The third point on the paper's language-gap axis (Halli et al.'s JNI
micro-kernels, PAPERS.md): native code for the hottest slab kernels
behind the same managed front end.  Covered kernels -- MG resid/psinv,
CG mat-vec, BT/SP rhs with its 4th-order dissipation -- are the ones the
per-region profiles put at the top of every run.

Structure
---------
Each kernel is a *plain module-level wrapper* (picklable by qualified
name, so the process backend ships it like any other slab function) that
unpacks non-numeric arguments (coefficient tuples,
:class:`~repro.cfd.constants.CFDConstants`) into scalars/arrays and calls
a *core*.  Cores are written as straight scalar loops that replicate the
reference kernels' floating-point grouping term by term -- the same
left-associative statement order the fused tier fuses -- and are wrapped
with ``numba.njit(cache=True)`` at import time when numba is present.

Tolerance policy (asserted by ``tests/kernels/test_fused_equivalence.py``)
--------------------------------------------------------------------------
The scalar loops replicate the reference grouping exactly, so results are
bit-identical in practice; each variant still declares a 1e-12 relative
band because the *jitted* code runs through LLVM, which may contract
``a*b + c`` into a fused multiply-add on some targets (numba disables
``fastmath`` but contraction is a backend decision).  ``cg.matvec``
additionally accumulates each row left to right, which is not guaranteed
to match ``np.add.reduceat``'s segment reduction order.  Nothing is waved
through: the declared band is the asserted bound.

Availability
------------
Without numba the module still imports; it marks the ``compiled`` tier
unavailable-with-reason in the registry and registers nothing, so
resolution falls back to ``fused``.  Install with ``pip install
'repro[compiled]'``.  Setting ``NPB_COMPILED_PUREPY=1`` registers the
un-jitted cores instead (identical arithmetic, interpreter speed) --
useful for validating the tier's numerics where numba cannot be
installed; the registry reports the substitution.
"""

from __future__ import annotations

import os

import numpy as np

from repro.kernels import registry

try:
    import numba

    NUMBA_AVAILABLE = True
    NUMBA_UNAVAILABLE_REASON = ""
except ImportError:
    numba = None
    NUMBA_AVAILABLE = False
    NUMBA_UNAVAILABLE_REASON = (
        "numba is not installed; pip install 'repro[compiled]' "
        "(pure-python stand-in available via NPB_COMPILED_PUREPY=1)")

#: Pure-python stand-in: register the un-jitted cores when numba is
#: missing.  Same IEEE double arithmetic, interpreter speed.
PUREPY = os.environ.get("NPB_COMPILED_PUREPY", "") not in ("", "0")

#: The declared relative band for the compiled variants (see module
#: docstring); relative to the max magnitude of the reference result.
COMPILED_TOLERANCE = 1e-12

_FMA_NOTE = ("scalar loops replicate the reference FP grouping; the band "
             "covers LLVM fused-multiply-add contraction in jitted code")


# ===================================================================== #
# cores (plain python here; njit-wrapped below when numba is present)
# ===================================================================== #


def _resid_core(lo, hi, u, v, r, a0, a2, a3):
    """r = v - A u on interior planes [1+lo, 1+hi); grouping matches
    ``_resid_slab_reference`` statement by statement."""
    n3, n2, n1 = u.shape
    u1 = np.empty(n1)
    u2 = np.empty(n1)
    for i3 in range(1 + lo, 1 + hi):
        for i2 in range(1, n2 - 1):
            for i1 in range(n1):
                u1[i1] = ((u[i3, i2 - 1, i1] + u[i3, i2 + 1, i1])
                          + u[i3 - 1, i2, i1]) + u[i3 + 1, i2, i1]
                u2[i1] = ((u[i3 - 1, i2 - 1, i1] + u[i3 - 1, i2 + 1, i1])
                          + u[i3 + 1, i2 - 1, i1]) + u[i3 + 1, i2 + 1, i1]
            for i1 in range(1, n1 - 1):
                t = v[i3, i2, i1] - a0 * u[i3, i2, i1]
                t = t - a2 * ((u2[i1] + u1[i1 - 1]) + u1[i1 + 1])
                r[i3, i2, i1] = t - a3 * (u2[i1 - 1] + u2[i1 + 1])


def _psinv_core(lo, hi, r, u, c0, c1, c2):
    """u += S r on interior planes [1+lo, 1+hi); grouping matches
    ``_psinv_slab_reference``."""
    n3, n2, n1 = r.shape
    r1 = np.empty(n1)
    r2 = np.empty(n1)
    for i3 in range(1 + lo, 1 + hi):
        for i2 in range(1, n2 - 1):
            for i1 in range(n1):
                r1[i1] = ((r[i3, i2 - 1, i1] + r[i3, i2 + 1, i1])
                          + r[i3 - 1, i2, i1]) + r[i3 + 1, i2, i1]
                r2[i1] = ((r[i3 - 1, i2 - 1, i1] + r[i3 - 1, i2 + 1, i1])
                          + r[i3 + 1, i2 - 1, i1]) + r[i3 + 1, i2 + 1, i1]
            for i1 in range(1, n1 - 1):
                t = c0 * r[i3, i2, i1]
                t = t + c1 * ((r[i3, i2, i1 - 1] + r[i3, i2, i1 + 1])
                              + r1[i1])
                t = t + c2 * ((r2[i1] + r1[i1 - 1]) + r1[i1 + 1])
                u[i3, i2, i1] = u[i3, i2, i1] + t


def _matvec_core(lo, hi, rowstr, colidx, a, x, out):
    """CSR mat-vec rows [lo, hi); each row accumulates left to right."""
    for row in range(lo, hi):
        s = 0.0
        for k in range(rowstr[row], rowstr[row + 1]):
            s += a[k] * x[colidx[k]]
        out[row] = s


def _rhs_flux_core(lo, hi, u, rhs, rho_i, us, vs, ws, qs, square,
                   o3, o2, o1, vel, t2, con2, con3, con4, con5,
                   d_t1, con43, c1, c2):
    """Central-difference fluxes of one direction ``(o3, o2, o1)`` on the
    slab interior; grouping matches the matching ``rhs_slab_reference``
    statements."""
    ny = u.shape[1]
    nx = u.shape[2]
    if vel == 1:
        w = us
    elif vel == 2:
        w = vs
    else:
        w = ws
    for k in range(1 + lo, 1 + hi):
        for j in range(1, ny - 1):
            for i in range(1, nx - 1):
                kp = k + o3
                jp = j + o2
                ip = i + o1
                km = k - o3
                jm = j - o2
                im = i - o1
                wp = w[kp, jp, ip]
                wc = w[k, j, i]
                wm = w[km, jm, im]
                sqp = square[kp, jp, ip]
                sqm = square[km, jm, im]
                # continuity: d_t1[0]*D2U(0) - t2*(U(vel,+1) - U(vel,-1))
                acc = ((u[kp, jp, ip, 0] - 2.0 * u[k, j, i, 0])
                       + u[km, jm, im, 0])
                acc = d_t1[0] * acc
                acc = acc - t2 * (u[kp, jp, ip, vel] - u[km, jm, im, vel])
                rhs[k, j, i, 0] = rhs[k, j, i, 0] + acc
                # momentum
                for m in range(1, 4):
                    acc = ((u[kp, jp, ip, m] - 2.0 * u[k, j, i, m])
                           + u[km, jm, im, m])
                    acc = d_t1[m] * acc
                    if m == vel:
                        acc = acc + con2 * con43 * ((wp - 2.0 * wc) + wm)
                        t = u[kp, jp, ip, m] * wp - u[km, jm, im, m] * wm
                        t = t + (((u[kp, jp, ip, 4] - sqp)
                                  - u[km, jm, im, 4]) + sqm) * c2
                        acc = acc - t2 * t
                    else:
                        if m == 1:
                            f = us
                        elif m == 2:
                            f = vs
                        else:
                            f = ws
                        d2f = ((f[kp, jp, ip] - 2.0 * f[k, j, i])
                               + f[km, jm, im])
                        acc = acc + con2 * d2f
                        acc = acc - t2 * (u[kp, jp, ip, m] * wp
                                          - u[km, jm, im, m] * wm)
                    rhs[k, j, i, m] = rhs[k, j, i, m] + acc
                # energy
                acc = ((u[kp, jp, ip, 4] - 2.0 * u[k, j, i, 4])
                       + u[km, jm, im, 4])
                acc = d_t1[4] * acc
                acc = acc + con3 * ((qs[kp, jp, ip] - 2.0 * qs[k, j, i])
                                    + qs[km, jm, im])
                acc = acc + con4 * ((wp * wp - (2.0 * wc) * wc) + wm * wm)
                acc = acc + con5 * ((u[kp, jp, ip, 4] * rho_i[kp, jp, ip]
                                     - (2.0 * u[k, j, i, 4])
                                     * rho_i[k, j, i])
                                    + u[km, jm, im, 4] * rho_i[km, jm, im])
                t = (c1 * u[kp, jp, ip, 4] - c2 * sqp) * wp
                t = t - (c1 * u[km, jm, im, 4] - c2 * sqm) * wm
                acc = acc - t2 * t
                rhs[k, j, i, 4] = rhs[k, j, i, 4] + acc


def _rhs_dissipation_core(lo, hi, u, rhs, o3, o2, o1, n, dssp):
    """4th-order dissipation of ``u`` along direction ``(o3, o2, o1)``
    (extent ``n``), one-sided at the first/last two interior rows;
    grouping matches ``_dissipation_u_reference``."""
    ny = u.shape[1]
    nx = u.shape[2]
    for k in range(1 + lo, 1 + hi):
        for j in range(1, ny - 1):
            for i in range(1, nx - 1):
                if o3 == 1:
                    pos = k
                elif o2 == 1:
                    pos = j
                else:
                    pos = i
                for m in range(5):
                    u0 = u[k, j, i, m]
                    if pos == 1:
                        d = ((5.0 * u0 - 4.0 * u[k + o3, j + o2, i + o1, m])
                             + u[k + 2 * o3, j + 2 * o2, i + 2 * o1, m])
                    elif pos == 2:
                        d = (((-4.0 * u[k - o3, j - o2, i - o1, m]
                               + 6.0 * u0)
                              - 4.0 * u[k + o3, j + o2, i + o1, m])
                             + u[k + 2 * o3, j + 2 * o2, i + 2 * o1, m])
                    elif pos == n - 3:
                        d = (((u[k - 2 * o3, j - 2 * o2, i - 2 * o1, m]
                               - 4.0 * u[k - o3, j - o2, i - o1, m])
                              + 6.0 * u0)
                             - 4.0 * u[k + o3, j + o2, i + o1, m])
                    elif pos == n - 2:
                        d = ((u[k - 2 * o3, j - 2 * o2, i - 2 * o1, m]
                              - 4.0 * u[k - o3, j - o2, i - o1, m])
                             + 5.0 * u0)
                    else:
                        d = ((((u[k - 2 * o3, j - 2 * o2, i - 2 * o1, m]
                                - 4.0 * u[k - o3, j - o2, i - o1, m])
                               + 6.0 * u0)
                              - 4.0 * u[k + o3, j + o2, i + o1, m])
                             + u[k + 2 * o3, j + 2 * o2, i + 2 * o1, m])
                    rhs[k, j, i, m] = rhs[k, j, i, m] - dssp * d


if NUMBA_AVAILABLE:
    # cache=True persists the compilation across processes (each forked
    # ProcessTeam worker would otherwise re-JIT on its first dispatch);
    # fastmath stays off -- reassociation would void the tolerance policy.
    _jit = numba.njit(cache=True, fastmath=False)
    _resid_core = _jit(_resid_core)
    _psinv_core = _jit(_psinv_core)
    _matvec_core = _jit(_matvec_core)
    _rhs_flux_core = _jit(_rhs_flux_core)
    _rhs_dissipation_core = _jit(_rhs_dissipation_core)


# ===================================================================== #
# slab wrappers (module-level: the process backend pickles them by name)
# ===================================================================== #


_AXIS_OFFSETS = {"x": (0, 0, 1), "y": (0, 1, 0), "z": (1, 0, 0)}
_CON_PREFIX = {"x": "xx", "y": "yy", "z": "zz"}


def resid_slab_compiled(lo: int, hi: int, u, v, r, a) -> None:
    """Compiled MG residual; same signature as ``_resid_slab``."""
    if hi <= lo:
        return
    a0, _, a2, a3 = a
    _resid_core(lo, hi, u, v, r, float(a0), float(a2), float(a3))


def psinv_slab_compiled(lo: int, hi: int, r, u, c) -> None:
    """Compiled MG smoother; same signature as ``_psinv_slab``."""
    if hi <= lo:
        return
    c0, c1, c2, _ = c
    _psinv_core(lo, hi, r, u, float(c0), float(c1), float(c2))


def matvec_slab_compiled(lo: int, hi: int, rowstr, colidx, a, x, out,
                         offsets=None) -> None:
    """Compiled CSR mat-vec; ``offsets`` (a reduceat precomputation) is
    accepted for signature compatibility and ignored -- the scalar loop
    needs no segment offsets."""
    if hi <= lo:
        return
    _matvec_core(lo, hi, rowstr, colidx, a, x, out)


def rhs_slab_compiled(lo: int, hi: int, u, rhs, forcing, rho_i, us, vs,
                      ws, qs, square, c) -> None:
    """Compiled BT/SP fluxes + dissipation + dt scaling; same signature
    and phase structure as ``rhs_slab`` (boundary-plane forcing copy,
    x/y/z flux+dissipation in order, final dt scale)."""
    if hi <= lo:
        return
    nz = u.shape[0]
    klo_copy = 0 if lo == 0 else 1 + lo
    khi_copy = nz if hi == nz - 2 else 1 + hi
    rhs[klo_copy:khi_copy] = forcing[klo_copy:khi_copy]
    extents = {"x": u.shape[2], "y": u.shape[1], "z": u.shape[0]}
    for direction, vel in (("x", 1), ("y", 2), ("z", 3)):
        o3, o2, o1 = _AXIS_OFFSETS[direction]
        prefix = _CON_PREFIX[direction]
        d_t1 = np.array([getattr(c, f"d{direction}{m}t{direction}1")
                         for m in range(1, 6)])
        _rhs_flux_core(lo, hi, u, rhs, rho_i, us, vs, ws, qs, square,
                       o3, o2, o1, vel,
                       float(getattr(c, f"t{direction}2")),
                       float(getattr(c, f"{prefix}con2")),
                       float(getattr(c, f"{prefix}con3")),
                       float(getattr(c, f"{prefix}con4")),
                       float(getattr(c, f"{prefix}con5")),
                       d_t1, float(c.con43), float(c.c1), float(c.c2))
        _rhs_dissipation_core(lo, hi, u, rhs, o3, o2, o1,
                              extents[direction], float(c.dssp))
    rhs[1 + lo: 1 + hi, 1:-1, 1:-1, :] *= c.dt


# ===================================================================== #
# registration
# ===================================================================== #


def warm_jit_cache(grid: int = 6) -> bool:
    """Trigger compilation of every core on a toy problem (CI smoke and
    microbenchmarks call this so JIT time never lands in a timed
    region).  Returns False when the tier is not registered."""
    if not (NUMBA_AVAILABLE or PUREPY):
        return False
    rng = np.random.default_rng(0)
    m = grid
    u = rng.standard_normal((m, m, m))
    r = rng.standard_normal((m, m, m))
    resid_slab_compiled(0, m - 2, u, u.copy(), r, (1.0, 0.0, 0.5, 0.25))
    psinv_slab_compiled(0, m - 2, r, u, (1.0, 0.5, 0.25, 0.0))
    rowstr = np.arange(m + 1, dtype=np.int64)
    colidx = np.zeros(m, dtype=np.int64)
    matvec_slab_compiled(0, m, rowstr, colidx, np.ones(m),
                         np.ones(m), np.empty(m))
    from repro.cfd.constants import CFDConstants

    cons = CFDConstants(m, m, m, 0.001)
    state = 0.1 * rng.standard_normal((m, m, m, 5))
    state[..., 0] = 1.0
    state[..., 4] = 5.0
    fields = [np.zeros((m, m, m)) for _ in range(6)]
    from repro.cfd.rhs import fields_slab_reference

    fields_slab_reference(0, m, state, *fields, None, cons)
    rho_i, us, vs, ws, qs, square = fields
    rhs_slab_compiled(0, m - 2, state, np.zeros((m, m, m, 5)),
                      np.zeros((m, m, m, 5)), rho_i, us, vs, ws, qs,
                      square, cons)
    return True


if NUMBA_AVAILABLE or PUREPY:
    _matvec_note = ("row sums accumulate left to right, which "
                    "np.add.reduceat's segment reduction order does not "
                    "guarantee; " + _FMA_NOTE)
    registry.register("mg.resid", "compiled", resid_slab_compiled,
                      tolerance=COMPILED_TOLERANCE, note=_FMA_NOTE)
    registry.register("mg.psinv", "compiled", psinv_slab_compiled,
                      tolerance=COMPILED_TOLERANCE, note=_FMA_NOTE)
    registry.register("cg.matvec", "compiled", matvec_slab_compiled,
                      tolerance=COMPILED_TOLERANCE, note=_matvec_note)
    registry.register("cfd.rhs", "compiled", rhs_slab_compiled,
                      tolerance=COMPILED_TOLERANCE, note=_FMA_NOTE)
else:
    registry.REGISTRY.mark_tier_unavailable(
        "compiled", NUMBA_UNAVAILABLE_REASON)
