"""Tests for BT/SP initialization, forcing, and compute_rhs."""

import numpy as np
import pytest

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import exact_field
from repro.cfd.exact_rhs import compute_forcing
from repro.cfd.initialize import initialize
from repro.cfd.norms import error_norm, rhs_norm
from repro.cfd.rhs import fields_slab, rhs_slab
from repro.team import ThreadTeam


@pytest.fixture(scope="module")
def constants():
    return CFDConstants(12, 12, 12, 0.015)


def _alloc(c):
    shape = (c.nz, c.ny, c.nx)
    fields = {name: np.zeros(shape) for name in
              ("rho_i", "us", "vs", "ws", "qs", "square", "speed")}
    return fields


def _compute_rhs(c, u, forcing, nslabs=1):
    fields = _alloc(c)
    rhs = np.zeros(u.shape)
    # emulate slab splitting manually to test invariance
    from repro.team.partition import block_partition

    for lo, hi in block_partition(c.nz, nslabs):
        fields_slab(lo, hi, u, fields["rho_i"], fields["us"], fields["vs"],
                    fields["ws"], fields["qs"], fields["square"],
                    fields["speed"], c)
    for lo, hi in block_partition(c.nz - 2, nslabs):
        rhs_slab(lo, hi, u, rhs, forcing, fields["rho_i"], fields["us"],
                 fields["vs"], fields["ws"], fields["qs"],
                 fields["square"], c)
    return rhs


class TestInitialize:
    def test_boundaries_are_exact(self, constants):
        c = constants
        u = np.zeros((c.nz, c.ny, c.nx, 5))
        initialize(u, c)
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        for face in (u[0] - ue[0], u[-1] - ue[-1],
                     u[:, 0] - ue[:, 0], u[:, -1] - ue[:, -1],
                     u[:, :, 0] - ue[:, :, 0], u[:, :, -1] - ue[:, :, -1]):
            assert np.abs(face).max() < 1e-14

    def test_interior_differs_from_exact(self, constants):
        c = constants
        u = np.zeros((c.nz, c.ny, c.nx, 5))
        initialize(u, c)
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        assert np.abs((u - ue)[1:-1, 1:-1, 1:-1]).max() > 1e-6

    def test_error_norm_nonzero_initially(self, constants):
        c = constants
        u = np.zeros((c.nz, c.ny, c.nx, 5))
        initialize(u, c)
        assert np.all(error_norm(u, c) > 0)


class TestForcingStationarity:
    def test_rhs_of_exact_solution_vanishes(self, constants):
        """The forcing is defined so the exact field is a fixed point:
        compute_rhs(exact) must be ~0 (the core invariant of BT/SP)."""
        c = constants
        forcing = np.zeros((c.nz, c.ny, c.nx, 5))
        compute_forcing(forcing, c)
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        rhs = _compute_rhs(c, ue, forcing)
        assert np.abs(rhs[1:-1, 1:-1, 1:-1]).max() < 1e-13

    def test_forcing_zero_on_boundary(self, constants):
        c = constants
        forcing = np.zeros((c.nz, c.ny, c.nx, 5))
        compute_forcing(forcing, c)
        assert np.all(forcing[0] == 0) and np.all(forcing[-1] == 0)
        assert np.all(forcing[:, 0] == 0) and np.all(forcing[:, :, 0] == 0)


class TestRhsSlabInvariance:
    def test_slab_count_does_not_change_result(self, constants):
        c = constants
        u = np.zeros((c.nz, c.ny, c.nx, 5))
        initialize(u, c)
        forcing = np.zeros((c.nz, c.ny, c.nx, 5))
        compute_forcing(forcing, c)
        reference = _compute_rhs(c, u, forcing, nslabs=1)
        for nslabs in (2, 3, 5):
            assert np.array_equal(reference,
                                  _compute_rhs(c, u, forcing, nslabs))

    def test_team_matches_manual(self, constants):
        c = constants
        u = np.zeros((c.nz, c.ny, c.nx, 5))
        initialize(u, c)
        forcing = np.zeros((c.nz, c.ny, c.nx, 5))
        compute_forcing(forcing, c)
        reference = _compute_rhs(c, u, forcing)

        with ThreadTeam(3) as team:
            fields = _alloc(c)
            rhs = np.zeros(u.shape)
            team.parallel_for(c.nz, fields_slab, u, fields["rho_i"],
                              fields["us"], fields["vs"], fields["ws"],
                              fields["qs"], fields["square"],
                              fields["speed"], c)
            team.parallel_for(c.nz - 2, rhs_slab, u, rhs, forcing,
                              fields["rho_i"], fields["us"], fields["vs"],
                              fields["ws"], fields["qs"],
                              fields["square"], c)
        assert np.array_equal(reference, rhs)


class TestNorms:
    def test_rhs_norm_of_zero(self, constants):
        c = constants
        assert np.all(rhs_norm(np.zeros((c.nz, c.ny, c.nx, 5)), c) == 0)

    def test_error_norm_of_exact_field(self, constants):
        c = constants
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        assert np.all(error_norm(ue, c) == 0)
