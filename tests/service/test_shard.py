"""Shard coordinator tests: ring properties, routing, failover, and the
coordinator HTTP front end -- all in-process (``port=0`` loopback shards,
no daemons)."""

from __future__ import annotations

import contextlib
import threading
import time
from collections import Counter
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro import run_benchmark
from repro.service import BenchService, ServiceClient, make_server
from repro.service.jobs import JobSpec, routing_key
from repro.service.shard import (BALANCE_BOUND, HashRing, ShardCoordinator,
                                 make_shard_server)


class TestHashRing:
    def test_balance_within_declared_bound(self):
        """Every shard's share of random keys stays within BALANCE_BOUND
        of the even share -- the bound shard.py declares in its docs."""
        for names in (["shard0", "shard1"],
                      [f"shard{i}" for i in range(4)],
                      [f"shard{i}" for i in range(8)]):
            ring = HashRing(names)
            counts = Counter(ring.route(f"key-{i}") for i in range(20000))
            mean = 20000 / len(names)
            for name in names:
                deviation = abs(counts.get(name, 0) - mean) / mean
                assert deviation <= BALANCE_BOUND, (name, deviation)

    def test_resharding_moves_at_most_2_over_n_of_keys(self):
        """Adding a fifth shard to four remaps ~1/5 of the keyspace --
        and certainly no more than 2/N -- so per-shard caches stay warm
        across a scale-out."""
        ring4 = HashRing([f"shard{i}" for i in range(4)])
        ring5 = HashRing([f"shard{i}" for i in range(5)])
        keys = [f"key-{i}" for i in range(20000)]
        moved = sum(ring4.route(k) != ring5.route(k) for k in keys)
        fraction = moved / len(keys)
        assert 0.0 < fraction <= 2 / 4, fraction
        # every moved key lands on the new shard, never between old ones
        for key in keys:
            if ring4.route(key) != ring5.route(key):
                assert ring5.route(key) == "shard4"

    def test_preference_is_a_deterministic_permutation(self):
        ring = HashRing([f"shard{i}" for i in range(4)])
        for key in ("key-a", "key-b", "key-c"):
            order = ring.preference(key)
            assert sorted(order) == sorted(ring.nodes)
            assert order == ring.preference(key)  # stable
            assert order[0] == ring.route(key)
            # excluding the owner routes to the next in preference order
            assert ring.route(key, exclude={order[0]}) == order[1]

    def test_remove_only_remaps_the_removed_nodes_keys(self):
        ring = HashRing([f"shard{i}" for i in range(4)])
        before = {f"key-{i}": ring.route(f"key-{i}") for i in range(2000)}
        ring.remove("shard2")
        for key, owner in before.items():
            if owner != "shard2":
                assert ring.route(key) == owner


class TestRoutingKey:
    def test_matches_jobspec_method(self):
        spec = JobSpec.create("CG", "S", backend="serial", workers=1)
        payload = {"benchmark": "CG", "problem_class": "S",
                   "backend": "serial", "workers": 1}
        assert spec.routing_key() == routing_key(payload)

    def test_ignores_non_run_affecting_fields(self):
        base = {"benchmark": "MG", "problem_class": "S"}
        noisy = dict(base, priority="high", no_cache=True, wait=True,
                     job_key="abc")
        assert routing_key(base) == routing_key(noisy)

    def test_normalizes_case_and_defaults(self):
        assert routing_key({"benchmark": "cg"}) == routing_key(
            {"benchmark": "CG", "problem_class": "S",
             "backend": "serial", "workers": 1})

    def test_distinct_specs_get_distinct_keys(self):
        keys = {routing_key({"benchmark": b, "problem_class": c})
                for b in ("CG", "MG", "FT") for c in ("S", "W")}
        assert len(keys) == 6


@contextlib.contextmanager
def _shard_fleet(tmp_path, count=2, pool_size=1):
    """``count`` in-process shard daemons fronted by a coordinator."""
    services, httpds, threads = [], [], []
    coordinator = None
    try:
        shards = {}
        for i in range(count):
            service = BenchService(backend="serial", pool_size=pool_size,
                                   cache_dir=str(tmp_path / f"cache{i}"))
            httpd = make_server(service, port=0)
            thread = threading.Thread(target=httpd.serve_forever,
                                      daemon=True)
            thread.start()
            services.append(service)
            httpds.append(httpd)
            threads.append(thread)
            host, port = httpd.server_address[:2]
            shards[f"s{i}"] = f"http://{host}:{port}"
        coordinator = ShardCoordinator(shards, health_interval=60.0)
        coordinator.start()
        yield coordinator, services, httpds
    finally:
        if coordinator is not None:
            coordinator.close()
        for httpd in httpds:
            httpd.shutdown()
            httpd.server_close()
        for service in services:
            service.drain(timeout=60.0)


def _verification_values(record: dict):
    return [(c["quantity"], c["computed"]) for c in record["verification"]]


class TestShardCoordinator:
    def test_routing_is_deterministic_and_resubmission_hits_cache(
            self, tmp_path):
        """The acceptance path: an identical spec resubmitted through
        the coordinator lands on the same shard and is a cache hit."""
        with _shard_fleet(tmp_path) as (coordinator, services, _):
            payload = {"benchmark": "CG", "problem_class": "S",
                       "wait": True}
            code1, first = coordinator.submit(dict(payload))
            code2, second = coordinator.submit(dict(payload))
        assert code1 == 200 and code2 == 200
        assert first["routing"]["served_by"] == second["routing"]["served_by"]
        assert first["routing"]["degraded"] is False
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["state"] == "cached"
        # exactly one shard executed exactly once
        executed = [s.scheduler.executed for s in services]
        assert sorted(executed) == [0, 1]

    def test_jobs_namespaced_and_looked_up_through_coordinator(
            self, tmp_path):
        with _shard_fleet(tmp_path) as (coordinator, _, __):
            _, body = coordinator.submit({"benchmark": "MG",
                                          "problem_class": "S",
                                          "wait": True})
            shard, _, raw_id = body["job_id"].partition(":")
            assert shard in ("s0", "s1")
            assert raw_id.startswith("job-")
            code, fetched = coordinator.job(body["job_id"])
            assert code == 200
            assert fetched["job_id"] == body["job_id"]
            assert coordinator.job("nope:job-000001")[0] == 404
            assert coordinator.job("malformed")[0] == 404
            _, listing = coordinator.jobs()
            assert body["job_id"] in {j["job_id"] for j in listing["jobs"]}

    def test_eight_concurrent_jobs_bit_identical_through_http(
            self, tmp_path):
        """8 concurrent submissions through the coordinator's own HTTP
        front end complete and match direct one-shot runs bit for bit."""
        with _shard_fleet(tmp_path, pool_size=2) as (coordinator, _, __):
            httpd = make_shard_server(coordinator, port=0)
            thread = threading.Thread(target=httpd.serve_forever,
                                      daemon=True)
            thread.start()
            host, port = httpd.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            results = [None] * 8

            def submit(i):
                results[i] = client.submit(
                    {"benchmark": "CG" if i % 2 == 0 else "MG",
                     "problem_class": "S", "no_cache": True,
                     "wait": True})
            workers = [threading.Thread(target=submit, args=(i,))
                       for i in range(8)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            httpd.shutdown()
            httpd.server_close()
        direct = {name: run_benchmark(name, "S").to_dict()
                  for name in ("CG", "MG")}
        for i, outcome in enumerate(results):
            code, body = outcome
            assert code == 200, body
            assert body["state"] == "done"
            name = "CG" if i % 2 == 0 else "MG"
            assert (_verification_values(body["result"])
                    == _verification_values(direct[name]))

    def test_npb_jobs_cli_renders_coordinator_status(self, tmp_path,
                                                     capsys):
        """``npb jobs`` pointed at a coordinator renders the fleet
        rollup (the aggregated /status has no top-level queue/pool)."""
        from repro.harness import cli

        with _shard_fleet(tmp_path) as (coordinator, _, __):
            httpd = make_shard_server(coordinator, port=0)
            thread = threading.Thread(target=httpd.serve_forever,
                                      daemon=True)
            thread.start()
            try:
                host, port = httpd.server_address[:2]
                coordinator.submit({"benchmark": "CG",
                                    "problem_class": "S", "wait": True})
                rc = cli.main(["jobs", "--url", f"http://{host}:{port}"])
            finally:
                httpd.shutdown()
                httpd.server_close()
        out = capsys.readouterr().out
        assert rc == 0
        assert "coordinator up" in out
        assert "2/2 shards" in out
        assert "1 submitted" in out
        # the namespaced job line rides along
        assert "job s" in out and "verified=True" in out

    def test_aggregated_status_fans_in_both_shards(self, tmp_path):
        with _shard_fleet(tmp_path) as (coordinator, _, __):
            coordinator.submit({"benchmark": "CG", "problem_class": "S",
                                "wait": True})
            coordinator.submit({"benchmark": "CG", "problem_class": "S",
                                "wait": True})
            status = coordinator.status()
        assert status["shard_count"] == 2
        assert status["healthy_shards"] == 2
        assert status["degraded"] is False
        assert status["totals"]["pool_size"] == 2  # 1 per shard
        assert status["totals"]["cache_hits"] >= 1
        assert status["totals"]["executed"] == 1
        assert status["routing"]["submitted"] == 2
        assert status["routing"]["failovers"] == 0
        assert set(status["shards"]) == {"s0", "s1"}

    def test_routes_around_a_dead_shard_with_degraded_verdict(
            self, tmp_path):
        with _shard_fleet(tmp_path) as (coordinator, services, httpds):
            payload = {"benchmark": "FT", "problem_class": "S",
                       "wait": True}
            owner = coordinator.route(payload)
            index = int(owner[1:])  # "s0" -> 0
            # kill the owning shard's HTTP front end
            httpds[index].shutdown()
            httpds[index].server_close()
            code, body = coordinator.submit(dict(payload))
            assert code == 200, body
            routing = body["routing"]
            assert routing["intended"] == owner
            assert routing["served_by"] != owner
            assert routing["degraded"] is True
            assert owner in routing["reason"]
            assert routing["attempts"][0]["shard"] == owner
            assert body["state"] == "done"
            status = coordinator.status()
            assert status["healthy_shards"] == 1
            assert status["degraded"] is True
            assert status["routing"]["failovers"] == 1
            # the survivor executed the job
            survivor = services[1 - index]
            assert survivor.scheduler.executed == 1
            # restart-free lookup of the failed-over job still works
            assert coordinator.job(body["job_id"])[0] == 200
            # avoid double-shutdown in the fixture finally block
            httpds.pop(index)
            services.pop(index).drain(timeout=60.0)

    def test_all_shards_dead_is_a_structured_503(self, tmp_path):
        with _shard_fleet(tmp_path) as (coordinator, services, httpds):
            while httpds:
                httpd = httpds.pop()
                httpd.shutdown()
                httpd.server_close()
            code, body = coordinator.submit({"benchmark": "CG",
                                             "problem_class": "S"})
            assert code == 503
            assert body["routing"]["degraded"] is True
            assert body["routing"]["served_by"] is None
            assert len(body["routing"]["attempts"]) == 2
            assert coordinator.status()["healthy_shards"] == 0


class TestJobKeyIdempotency:
    def test_repeated_job_key_attaches_to_the_admitted_job(self, tmp_path):
        service = BenchService(backend="serial", pool_size=1,
                               cache_dir=str(tmp_path / "cache"))
        with service:
            first = service.submit("CG", "S", job_key="k1", no_cache=True)
            again = service.submit("CG", "S", job_key="k1", no_cache=True)
            other = service.submit("CG", "S", job_key="k2", no_cache=True)
            assert again is first
            assert other is not first
            done = service.wait(first.job_id, timeout=300)
            assert done.state == "done"
            # a repeat after completion still returns the same job
            assert service.submit("CG", "S", job_key="k1") is first

    def test_coordinator_stamps_a_job_key(self, tmp_path):
        with _shard_fleet(tmp_path) as (coordinator, services, _):
            _, body = coordinator.submit({"benchmark": "CG",
                                          "problem_class": "S",
                                          "wait": True})
            _, _, raw_id = body["job_id"].partition(":")
            job = next(j for s in services for j in s.jobs()
                       if j.job_id == raw_id)
            assert job.job_key is not None
            key = routing_key({"benchmark": "CG", "problem_class": "S"})
            assert job.job_key.startswith(key[:16])


class _FlakyHandler(BaseHTTPRequestHandler):
    """Rejects the first N submissions with 429 + Retry-After, then 200."""

    rejections = 2
    seen = 0

    def log_message(self, format, *args):
        pass

    def do_POST(self):
        length = int(self.headers.get("Content-Length", "0"))
        self.rfile.read(length)
        cls = type(self)
        cls.seen += 1
        if cls.seen <= cls.rejections:
            body = b'{"error": "queue full"}'
            self.send_response(429)
            self.send_header("Retry-After", "0.01")
        else:
            body = b'{"state": "done", "ok": true}'
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class TestClientRetryAfter:
    @pytest.fixture
    def flaky_url(self):
        _FlakyHandler.seen = 0
        httpd = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        yield f"http://{host}:{port}"
        httpd.shutdown()
        httpd.server_close()

    def test_submit_retries_through_429_honoring_retry_after(
            self, flaky_url):
        client = ServiceClient(flaky_url, timeout=10.0)
        started = time.perf_counter()
        code, body = client.submit({"benchmark": "CG"}, retries=3)
        elapsed = time.perf_counter() - started
        assert code == 200
        assert body["ok"] is True
        assert _FlakyHandler.seen == 3  # 2 rejections + 1 success
        assert elapsed < 5.0  # honored the 0.01s hint, not a default 1s

    def test_submit_without_retries_returns_the_429(self, flaky_url):
        client = ServiceClient(flaky_url, timeout=10.0)
        code, body = client.submit({"benchmark": "CG"})
        assert code == 429
        assert _FlakyHandler.seen == 1

    def test_retries_exhausted_returns_final_429(self, flaky_url):
        _FlakyHandler.rejections = 10
        try:
            client = ServiceClient(flaky_url, timeout=10.0)
            code, _ = client.submit({"benchmark": "CG"}, retries=2)
            assert code == 429
            assert _FlakyHandler.seen == 3  # initial try + 2 retries
        finally:
            _FlakyHandler.rejections = 2
