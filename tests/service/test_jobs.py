"""Job model and admission queue unit tests."""

from __future__ import annotations

import pytest

from repro.service.jobs import (AdmissionRejected, Job, JobQueue, JobSpec)


def _spec(**overrides) -> JobSpec:
    base = dict(benchmark="CG", problem_class="S")
    base.update(overrides)
    return JobSpec.create(**base)


def _job(n: int = 1, priority: str = "normal", **spec) -> Job:
    return Job(job_id=f"job-{n:06d}", spec=_spec(**spec), priority=priority)


class TestJobSpec:
    def test_fingerprint_is_deterministic(self):
        assert _spec().fingerprint() == _spec().fingerprint()

    def test_fingerprint_covers_every_run_dimension(self):
        base = _spec().fingerprint()
        assert _spec(benchmark="MG").fingerprint() != base
        assert _spec(backend="threads", workers=2).fingerprint() != base
        assert _spec(backend="serial", workers=1,
                     max_retries=5).fingerprint() != base
        assert _spec(dispatch_timeout=9.0).fingerprint() != base

    def test_fingerprint_covers_environment_pin(self):
        spec = _spec()
        moved = JobSpec.from_dict({**spec.as_dict(), "git_sha": "deadbeef"})
        assert moved.fingerprint() != spec.fingerprint()

    def test_round_trip(self):
        spec = _spec(backend="threads", workers=2, dispatch_timeout=3.0)
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_create_validates(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            JobSpec.create("NOPE")
        with pytest.raises(ValueError, match="unknown backend"):
            JobSpec.create("CG", backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            JobSpec.create("CG", workers=0)

    def test_fault_policy_mapping(self):
        assert _spec().fault_policy() is None
        policy = _spec(dispatch_timeout=2.0, max_retries=7).fault_policy()
        assert policy.dispatch_timeout == 2.0
        assert policy.max_retries == 7


class TestJobQueue:
    def test_fifo_within_a_lane(self):
        queue = JobQueue(maxdepth=8)
        first, second = _job(1), _job(2)
        queue.put(first)
        queue.put(second)
        assert queue.get() is first
        assert queue.get() is second

    def test_high_lane_drains_first(self):
        queue = JobQueue(maxdepth=8)
        normal, high = _job(1), _job(2, priority="high")
        queue.put(normal)
        queue.put(high)
        assert queue.get() is high
        assert queue.get() is normal

    def test_put_stamps_queued_state(self):
        queue = JobQueue(maxdepth=8)
        job = _job(1)
        assert job.state == "submitted" and job.queued_at is None
        queue.put(job)
        assert job.state == "queued" and job.queued_at is not None

    def test_bounded_depth_rejects_explicitly(self):
        queue = JobQueue(maxdepth=2)
        queue.put(_job(1))
        queue.put(_job(2))
        with pytest.raises(AdmissionRejected) as excinfo:
            queue.put(_job(3))
        assert excinfo.value.depth == 2
        assert excinfo.value.capacity == 2
        # admitted work is untouched by the rejection
        assert queue.depth == 2

    def test_close_rejects_new_but_drains_admitted(self):
        queue = JobQueue(maxdepth=8)
        admitted = _job(1)
        queue.put(admitted)
        queue.close()
        with pytest.raises(AdmissionRejected, match="draining"):
            queue.put(_job(2))
        # the admitted job still comes out; then None signals shutdown
        assert queue.get() is admitted
        assert queue.get() is None

    def test_get_timeout_returns_none(self):
        queue = JobQueue(maxdepth=2)
        assert queue.get(timeout=0.05) is None

    def test_unknown_priority_rejected(self):
        queue = JobQueue(maxdepth=2)
        with pytest.raises(ValueError, match="priority"):
            queue.put(_job(1, priority="urgent"))


class TestJobRecord:
    def test_as_dict_carries_service_fields(self):
        job = _job(7)
        payload = job.as_dict()
        assert payload["job_id"] == "job-000007"
        assert payload["state"] == "submitted"
        assert payload["fingerprint"] == job.spec.fingerprint()
        assert payload["cache_hit"] is False
        assert payload["queue_wait_seconds"] == 0.0

    def test_queue_wait_measured_from_admission_to_start(self):
        job = _job(1)
        job.queued_at = 100.0
        job.started_at = 100.5
        assert job.queue_wait_seconds == pytest.approx(0.5)
