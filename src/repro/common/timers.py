"""NPB timer facility.

The Fortran benchmarks carry a small array of named timers
(``timer_clear``, ``timer_start``, ``timer_stop``, ``timer_read``); every
benchmark reports at least ``t_total`` (the timed region excludes
initialization, as in the paper).  :class:`TimerSet` reproduces that
interface; :class:`Timer` is the single-timer building block and also works
as a context manager.
"""

from __future__ import annotations

import time
from collections import OrderedDict


class Timer:
    """Accumulating stopwatch, NPB style.

    Elapsed time accumulates across start/stop pairs until ``clear``.
    """

    __slots__ = ("elapsed", "count", "_started_at", "running")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._started_at = 0.0
        self.running = False

    def clear(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self.running = False

    def start(self) -> None:
        if self.running:
            raise RuntimeError("timer already running")
        self._started_at = time.perf_counter()
        self.running = True

    def stop(self) -> float:
        if not self.running:
            raise RuntimeError("timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self.count += 1
        self.running = False
        return self.elapsed

    def read(self) -> float:
        """Current accumulated time; includes the live interval if running."""
        if self.running:
            return self.elapsed + (time.perf_counter() - self._started_at)
        return self.elapsed

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class TimerSet:
    """A named collection of timers (the NPB ``timer_*`` array).

    Timers are created on first use, so benchmark code can write
    ``timers.start("rhs")`` without declaring the timer beforehand.
    """

    def __init__(self) -> None:
        self._timers: "OrderedDict[str, Timer]" = OrderedDict()

    def __getitem__(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer()
        return timer

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def names(self) -> list[str]:
        return list(self._timers)

    def clear_all(self) -> None:
        for timer in self._timers.values():
            timer.clear()

    def start(self, name: str) -> None:
        self[name].start()

    def stop(self, name: str) -> float:
        return self[name].stop()

    def read(self, name: str) -> float:
        return self[name].read()

    def report(self) -> dict[str, float]:
        """Snapshot of all timers, in creation order."""
        return {name: t.read() for name, t in self._timers.items()}

    def counts(self) -> dict[str, int]:
        """Completed start/stop intervals per timer, in creation order."""
        return {name: t.count for name, t in self._timers.items()}
