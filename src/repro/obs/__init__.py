"""Distributed tracing and metrics for the NPB serving stack.

The paper attributes wall-clock time to layers (JVM vs native code,
thread placement, per-kernel splits); this package does the same for
the reproduction's own stack.  One traced submit produces a span tree

    client -> coordinator -> front end -> scheduler -> run -> regions

where the leaf region spans reuse :class:`~repro.runtime.region.
RegionRecorder` timings instead of re-measuring them, so the tree's
leaves agree with the run record the job already emits.

Modules
-------
``trace``
    :class:`TraceContext` carried in a :mod:`contextvars` variable and
    propagated over HTTP via a W3C-``traceparent``-style header.
``spans``
    Structured :class:`Span` objects in a bounded per-process ring
    buffer (:class:`SpanStore`) with Bernoulli sampling.
``metrics``
    Stdlib-only counters / gauges / log-bucketed histograms with
    Prometheus text exposition.
``export``
    Schema-versioned ``TRACE_<seq>.json`` records and JSONL export.

Everything here is stdlib-only by design: the service must not grow a
dependency just to observe itself.
"""

from repro.obs.trace import (  # noqa: F401
    TRACEPARENT_HEADER,
    TraceContext,
    current_trace,
    format_traceparent,
    parse_traceparent,
    perf_to_epoch_offset,
    tracing_active,
    use_trace,
)
from repro.obs.spans import (  # noqa: F401
    Span,
    SpanStore,
    TraceSampler,
    get_span_store,
    set_span_store,
    spans_from_team_trace,
)
from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    process_rss_bytes,
)
from repro.obs.export import (  # noqa: F401
    TRACE_RECORD_SCHEMA_VERSION,
    build_trace_record,
    render_trace_tree,
    spans_to_jsonl,
    write_trace_record,
)
