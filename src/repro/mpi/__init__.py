"""Message-passing substrate and MPI-style NPB implementations.

The paper's related work contrasts its shared-memory Java threads with
the University of Westminster's ``javampi`` NPB codes (FT and IS over a
JNI MPI binding) and notes that MPI/HPF parallelizations of the NPB
out-scaled the Java-thread versions on the SGI and SUN machines.  This
package supplies that comparison point natively:

* :mod:`repro.mpi.comm` -- a from-scratch SPMD message-passing runtime on
  forked processes and OS pipes: point-to-point send/recv plus the
  collectives the NPB-MPI codes use (barrier, bcast, reduce, allreduce,
  alltoall).
* :mod:`repro.mpi.ft_mpi` -- the distributed-transpose 3-D FFT of the
  NPB2 FT-MPI code (slab decomposition, alltoall transpose), verified
  against the same official checksums as the shared-memory FT.
* :mod:`repro.mpi.is_mpi` -- the bucketed key redistribution of IS-MPI,
  verified with the same partial/full verification.
* :mod:`repro.mpi.cg_ep_mpi` -- row-block CG (allreduce dot products)
  and EP (pure allreduce), the two ends of the communication spectrum.
"""

from repro.mpi.comm import Communicator, mpi_run
from repro.mpi.ft_mpi import ft_mpi_checksums
from repro.mpi.is_mpi import is_mpi_verify
from repro.mpi.cg_ep_mpi import cg_mpi_zeta, ep_mpi_sums

__all__ = [
    "Communicator",
    "mpi_run",
    "ft_mpi_checksums",
    "is_mpi_verify",
    "cg_mpi_zeta",
    "ep_mpi_sums",
]
