"""Tests for the perfex-analogue counters and the benchmark registry."""

import pytest

from repro.core.basic_ops import PAPER_GRID
from repro.core.counters import profile_operation
from repro.core.registry import available_benchmarks, get_benchmark
from repro.core.benchmark import NPBenchmark


class TestCounters:
    def test_fp_ratio_is_two_for_madd_ops(self):
        """perfex finding: Java executes ~2x the FP instructions because
        the JIT does not emit madd."""
        for op in ("stencil1", "stencil2", "matvec5"):
            profile = profile_operation(op, PAPER_GRID)
            assert profile.fp_ratio == pytest.approx(2.0, abs=0.15)

    def test_reduction_has_no_madd_advantage(self):
        profile = profile_operation("reduction", PAPER_GRID)
        assert profile.fp_ratio == 1.0

    def test_java_executes_many_more_instructions(self):
        for op in ("assignment", "stencil1", "stencil2", "matvec5",
                   "reduction"):
            profile = profile_operation(op, PAPER_GRID)
            assert profile.instruction_ratio > 3.0

    def test_counts_scale_with_grid(self):
        small = profile_operation("matvec5", (4, 4, 4))
        large = profile_operation("matvec5", (8, 8, 8))
        assert large.fp_madd == 8 * small.fp_madd

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            profile_operation("gemm", PAPER_GRID)


class TestRegistry:
    def test_all_eight_benchmarks(self):
        assert sorted(available_benchmarks()) == sorted(
            ["BT", "SP", "LU", "FT", "MG", "CG", "IS", "EP"])

    def test_lookup_case_insensitive(self):
        assert get_benchmark("cg") is get_benchmark("CG")

    def test_all_are_npbenchmark_subclasses(self):
        for name in available_benchmarks():
            cls = get_benchmark(name)
            assert issubclass(cls, NPBenchmark)
            assert cls.name == name

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("ZZ")
