"""LU initial and boundary values (setbv/setiv) and the surface integral
(pintgr)."""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import exact_solution, grid_coordinates


def setbv(u: np.ndarray, c: CFDConstants) -> None:
    """Exact solution on the six boundary faces (setbv in lu.f)."""
    nx, ny, nz = c.nx, c.ny, c.nz
    xi = grid_coordinates(nx, c.dnxm1)[None, :]
    eta = grid_coordinates(ny, c.dnym1)[None, :]
    zeta = grid_coordinates(nz, c.dnzm1)[:, None]
    u[0, :, :, :] = exact_solution(xi, eta.T, 0.0)
    u[nz - 1, :, :, :] = exact_solution(xi, eta.T, 1.0)
    u[:, 0, :, :] = exact_solution(xi, 0.0, zeta)
    u[:, ny - 1, :, :] = exact_solution(xi, 1.0, zeta)
    u[:, :, 0, :] = exact_solution(0.0, eta, zeta)
    u[:, :, nx - 1, :] = exact_solution(1.0, eta, zeta)


def setiv(u: np.ndarray, c: CFDConstants) -> None:
    """Interior initial values by face interpolation (setiv in lu.f).

    Unlike BT/SP's Boolean-sum of all six faces at once, LU interpolates
    between opposite exact faces per direction and combines with the same
    trilinear blending; only interior points are written.
    """
    nx, ny, nz = c.nx, c.ny, c.nz
    xi = grid_coordinates(nx, c.dnxm1)[None, None, 1:-1, None]
    eta = grid_coordinates(ny, c.dnym1)[None, 1:-1, None, None]
    zeta = grid_coordinates(nz, c.dnzm1)[1:-1, None, None, None]

    xirow = grid_coordinates(nx, c.dnxm1)[None, 1:-1]
    etarow = grid_coordinates(ny, c.dnym1)[None, 1:-1]
    zetacol = grid_coordinates(nz, c.dnzm1)[1:-1, None]

    # Exact values on the faces, restricted to the interior of the
    # other two directions.
    ue_x0 = exact_solution(0.0, etarow, zetacol)[:, :, None, :]
    ue_x1 = exact_solution(1.0, etarow, zetacol)[:, :, None, :]
    ue_y0 = exact_solution(xirow, 0.0, zetacol)[:, None, :, :]
    ue_y1 = exact_solution(xirow, 1.0, zetacol)[:, None, :, :]
    ue_z0 = exact_solution(xirow, etarow.T, 0.0)[None, :, :, :]
    ue_z1 = exact_solution(xirow, etarow.T, 1.0)[None, :, :, :]

    pxi = (1.0 - xi) * ue_x0 + xi * ue_x1
    peta = (1.0 - eta) * ue_y0 + eta * ue_y1
    pzeta = (1.0 - zeta) * ue_z0 + zeta * ue_z1
    u[1:-1, 1:-1, 1:-1, :] = (pxi + peta + pzeta
                              - pxi * peta - peta * pzeta - pxi * pzeta
                              + pxi * peta * pzeta)


def pintgr(u: np.ndarray, c: CFDConstants) -> float:
    """Surface integral of the pressure over three box faces (pintgr)."""
    nx, ny, nz = c.nx, c.ny, c.nz
    # Fortran 1-based bounds: ii1=2, ii2=nx-1, ji1=2, ji2=ny-2,
    # ki1=3, ki2=nz-1 -> 0-based:
    ib, ie = 1, nx - 2   # i in [ib, ie]
    jb, je = 1, ny - 3   # j in [jb, je]
    kb, ke = 2, nz - 2   # k in [kb, ke]

    def phi(k, j, i):
        """c2 * (u5 - dynamic pressure); k/j/i are index arrays or slices."""
        sub = u[k, j, i, :]
        return c.c2 * (sub[..., 4] - 0.5 * (
            sub[..., 1] ** 2 + sub[..., 2] ** 2 + sub[..., 3] ** 2
        ) / sub[..., 0])

    def cellsum(p1, p2):
        """Sum of the 8 corner values over all 2x2 cells of two faces."""
        quad1 = p1[:-1, :-1] + p1[1:, :-1] + p1[:-1, 1:] + p1[1:, 1:]
        quad2 = p2[:-1, :-1] + p2[1:, :-1] + p2[:-1, 1:] + p2[1:, 1:]
        return float(np.sum(quad1 + quad2))

    isl = slice(ib, ie + 1)
    jsl = slice(jb, je + 1)
    ksl = slice(kb, ke + 1)

    frc1 = cellsum(phi(kb, jsl, isl), phi(ke, jsl, isl))
    frc1 *= c.dnxm1 * c.dnym1

    frc2 = cellsum(phi(ksl, jb, isl), phi(ksl, je, isl))
    frc2 *= c.dnxm1 * c.dnzm1

    frc3 = cellsum(phi(ksl, jsl, ib), phi(ksl, jsl, ie))
    frc3 *= c.dnym1 * c.dnzm1

    return 0.25 * (frc1 + frc2 + frc3)
