"""Table 7: Java Grande lufact vs LINPACK DGETRF.

Measured part: the BLAS1 lufact (numpy, Fortran role), the interpreted
lufact (Java role, reduced n), and the blocked BLAS3 DGETRF at class A
(n=500).  The shape target is lufact-slower-than-DGETRF in every style.
Simulated part: the per-machine Table 7 from the model.
"""

import pytest

from repro.lufact import (
    dgetrf_blocked,
    lufact_loops,
    lufact_numpy,
    make_system,
)
from nas_bench_util import attach_simulated_table

N_CLASS_A = 500
N_LOOPS = 160  # interpreted style: O(n^3) Python, keep it small


@pytest.fixture(scope="module")
def class_a_system():
    return make_system(N_CLASS_A)


def test_lufact_numpy_blas1(benchmark, class_a_system):
    a, _ = class_a_system
    benchmark.extra_info["role"] = "f77 lufact (BLAS1)"
    benchmark.pedantic(lufact_numpy, args=(a,), rounds=3, iterations=1)


def test_dgetrf_blocked_blas3(benchmark, class_a_system):
    a, _ = class_a_system
    benchmark.extra_info["role"] = "LINPACK DGETRF (BLAS3)"
    benchmark.pedantic(dgetrf_blocked, args=(a,), rounds=3, iterations=1)


def test_lufact_loops_java_role(benchmark):
    a, _ = make_system(N_LOOPS)
    benchmark.extra_info["role"] = "Java lufact (interpreted)"
    benchmark.extra_info["n"] = N_LOOPS
    benchmark.pedantic(lufact_loops, args=(a,), rounds=1, iterations=1)


def test_simulated_table7(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    attach_simulated_table(benchmark, 7)
