"""Experiment harness: regenerates every table of the paper's evaluation.

``python -m repro table N`` (or the ``npb`` console script) prints the
reproduction of the paper's Table N, in simulated mode (the machine models
of :mod:`repro.machines`, default) or measured mode (real runs of the
NumPy/Python implementations on the local host, ``--measured``).
"""

from repro.harness.report import (Table, bench_compare_table,
                                  bench_record_table, format_table,
                                  region_profile_table)
from repro.harness.stats import TimingSummary, summarize, time_callable
from repro.harness.tables import TABLES, generate_table

__all__ = ["Table", "format_table", "region_profile_table",
           "bench_record_table", "bench_compare_table", "TimingSummary",
           "summarize", "time_callable", "TABLES", "generate_table"]
