"""SP scalar pentadiagonal line solves (x_solve / y_solve / z_solve).

Each sweep solves, for every grid line in its direction, three scalar
pentadiagonal systems sharing one matrix (the u +/- 0 eigenvalues) plus
two more for the u +/- c acoustic eigenvalues (lhsp / lhsm).  The Thomas
elimination is sequential along the line; everything else is vectorized
over the lines of the worker's slab.

Slab decomposition follows the OpenMP SP: x and y sweeps are partitioned
over interior k planes, the z sweep over interior j planes.
"""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants


def _build_lhs(cv, rho_line, spd, dt1, dt2, c2dt1, c: CFDConstants):
    """Assemble lhs/lhsp/lhsm of shape cv.shape + (5,).

    ``cv``/``rho_line``/``spd`` have the sweep direction as last axis
    (full length n including boundary points).
    """
    n = cv.shape[-1]
    lhs = np.zeros(cv.shape + (5,))
    lhs[..., 0, 2] = 1.0
    lhs[..., n - 1, 2] = 1.0
    sl = slice(1, n - 1)
    lhs[..., sl, 1] = -dt2 * cv[..., : n - 2] - dt1 * rho_line[..., : n - 2]
    lhs[..., sl, 2] = 1.0 + c2dt1 * rho_line[..., sl]
    lhs[..., sl, 3] = dt2 * cv[..., 2:] - dt1 * rho_line[..., 2:]

    # 4th-order dissipation terms on the matrix.
    lhs[..., 1, 2] += c.comz5
    lhs[..., 1, 3] -= c.comz4
    lhs[..., 1, 4] += c.comz1
    lhs[..., 2, 1] -= c.comz4
    lhs[..., 2, 2] += c.comz6
    lhs[..., 2, 3] -= c.comz4
    lhs[..., 2, 4] += c.comz1
    mid = slice(3, n - 3)
    lhs[..., mid, 0] += c.comz1
    lhs[..., mid, 1] -= c.comz4
    lhs[..., mid, 2] += c.comz6
    lhs[..., mid, 3] -= c.comz4
    lhs[..., mid, 4] += c.comz1
    lhs[..., n - 3, 0] += c.comz1
    lhs[..., n - 3, 1] -= c.comz4
    lhs[..., n - 3, 2] += c.comz6
    lhs[..., n - 3, 3] -= c.comz4
    lhs[..., n - 2, 0] += c.comz1
    lhs[..., n - 2, 1] -= c.comz4
    lhs[..., n - 2, 2] += c.comz5

    lhsp = lhs.copy()
    lhsm = lhs.copy()
    lhsp[..., sl, 1] -= dt2 * spd[..., : n - 2]
    lhsp[..., sl, 3] += dt2 * spd[..., 2:]
    lhsm[..., sl, 1] += dt2 * spd[..., : n - 2]
    lhsm[..., sl, 3] -= dt2 * spd[..., 2:]
    return lhs, lhsp, lhsm


def _eliminate(lhs, r, comps) -> None:
    """Forward elimination of the pentadiagonal factor for the rhs
    components in ``comps`` (sweep axis at -2 of r, -2 of lhs)."""
    n = r.shape[-2]
    for i in range(n - 2):
        fac1 = 1.0 / lhs[..., i, 2]
        lhs[..., i, 3] *= fac1
        lhs[..., i, 4] *= fac1
        for m in comps:
            r[..., i, m] *= fac1
        l1 = lhs[..., i + 1, 1]
        lhs[..., i + 1, 2] -= l1 * lhs[..., i, 3]
        lhs[..., i + 1, 3] -= l1 * lhs[..., i, 4]
        for m in comps:
            r[..., i + 1, m] -= l1 * r[..., i, m]
        l0 = lhs[..., i + 2, 0]
        lhs[..., i + 2, 1] -= l0 * lhs[..., i, 3]
        lhs[..., i + 2, 2] -= l0 * lhs[..., i, 4]
        for m in comps:
            r[..., i + 2, m] -= l0 * r[..., i, m]
    # Last two rows.
    i = n - 2
    fac1 = 1.0 / lhs[..., i, 2]
    lhs[..., i, 3] *= fac1
    lhs[..., i, 4] *= fac1
    for m in comps:
        r[..., i, m] *= fac1
    l1 = lhs[..., i + 1, 1]
    lhs[..., i + 1, 2] -= l1 * lhs[..., i, 3]
    lhs[..., i + 1, 3] -= l1 * lhs[..., i, 4]
    for m in comps:
        r[..., i + 1, m] -= l1 * r[..., i, m]
    fac2 = 1.0 / lhs[..., i + 1, 2]
    for m in comps:
        r[..., i + 1, m] *= fac2


def _sweep(r, cv, rho_line, spd, dt1, dt2, c2dt1, c: CFDConstants) -> None:
    """Build the three factors and solve all five systems along the lines."""
    lhs, lhsp, lhsm = _build_lhs(cv, rho_line, spd, dt1, dt2, c2dt1, c)
    _eliminate(lhs, r, (0, 1, 2))
    _eliminate(lhsp, r, (3,))
    _eliminate(lhsm, r, (4,))
    i = r.shape[-2] - 2
    for m in (0, 1, 2):
        r[..., i, m] -= lhs[..., i, 3] * r[..., i + 1, m]
    r[..., i, 3] -= lhsp[..., i, 3] * r[..., i + 1, 3]
    r[..., i, 4] -= lhsm[..., i, 3] * r[..., i + 1, 4]
    for i in range(r.shape[-2] - 3, -1, -1):
        for m in (0, 1, 2):
            r[..., i, m] -= (lhs[..., i, 3] * r[..., i + 1, m]
                             + lhs[..., i, 4] * r[..., i + 2, m])
        r[..., i, 3] -= (lhsp[..., i, 3] * r[..., i + 1, 3]
                         + lhsp[..., i, 4] * r[..., i + 2, 3])
        r[..., i, 4] -= (lhsm[..., i, 3] * r[..., i + 1, 4]
                         + lhsm[..., i, 4] * r[..., i + 2, 4])


def x_solve_slab(lo: int, hi: int, rhs, rho_i, us, speed,
                 c: CFDConstants) -> None:
    """Pentadiagonal solves along x for interior k planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(1, -1), slice(None))
    ru1 = c.c3c4 * rho_i[sl]
    cv = us[sl]
    rhon = np.maximum(
        np.maximum(c.dx2 + c.con43 * ru1, c.dx5 + c.c1c5 * ru1),
        np.maximum(c.dxmax + ru1, np.float64(c.dx1)),
    )
    r = rhs[sl]
    _sweep(r, cv, rhon, speed[sl], c.dttx1, c.dttx2, c.c2dttx1, c)


def y_solve_slab(lo: int, hi: int, rhs, rho_i, vs, speed,
                 c: CFDConstants) -> None:
    """Pentadiagonal solves along y for interior k planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(None), slice(1, -1))
    ru1 = c.c3c4 * np.swapaxes(rho_i[sl], 1, 2)
    cv = np.swapaxes(vs[sl], 1, 2)
    rhoq = np.maximum(
        np.maximum(c.dy3 + c.con43 * ru1, c.dy5 + c.c1c5 * ru1),
        np.maximum(c.dymax + ru1, np.float64(c.dy1)),
    )
    spd = np.swapaxes(speed[sl], 1, 2)
    r = np.swapaxes(rhs[sl], 1, 2)
    _sweep(r, cv, rhoq, spd, c.dtty1, c.dtty2, c.c2dtty1, c)


def z_solve_slab(lo: int, hi: int, rhs, rho_i, ws, speed,
                 c: CFDConstants) -> None:
    """Pentadiagonal solves along z for interior j planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    sl = (slice(None), slice(1 + lo, 1 + hi), slice(1, -1))
    ru1 = c.c3c4 * np.moveaxis(rho_i[sl], 0, 2)
    cv = np.moveaxis(ws[sl], 0, 2)
    rhos = np.maximum(
        np.maximum(c.dz4 + c.con43 * ru1, c.dz5 + c.c1c5 * ru1),
        np.maximum(c.dzmax + ru1, np.float64(c.dz1)),
    )
    spd = np.moveaxis(speed[sl], 0, 2)
    r = np.moveaxis(rhs[sl], 0, 2)
    _sweep(r, cv, rhos, spd, c.dttz1, c.dttz2, c.c2dttz1, c)
