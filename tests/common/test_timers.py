"""Tests for the NPB timer facility."""

import time

import pytest

from repro.common.timers import Timer, TimerSet


class TestTimer:
    def test_accumulates_across_intervals(self):
        t = Timer()
        t.start()
        time.sleep(0.01)
        first = t.stop()
        t.start()
        time.sleep(0.01)
        second = t.stop()
        assert second > first >= 0.01

    def test_read_while_running(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        live = t.read()
        assert live >= 0.005
        assert t.running
        t.stop()

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_clear_resets(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        t.clear()
        assert t.elapsed == 0.0

    def test_context_manager(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        assert t.elapsed >= 0.002
        assert not t.running


class TestTimerSet:
    def test_created_on_first_use(self):
        ts = TimerSet()
        ts.start("rhs")
        ts.stop("rhs")
        assert "rhs" in ts
        assert ts.read("rhs") >= 0.0

    def test_report_preserves_creation_order(self):
        ts = TimerSet()
        for name in ("total", "rhs", "solve"):
            ts.start(name)
            ts.stop(name)
        assert list(ts.report()) == ["total", "rhs", "solve"]

    def test_clear_all(self):
        ts = TimerSet()
        ts.start("a")
        ts.stop("a")
        ts.clear_all()
        assert ts.read("a") == 0.0
