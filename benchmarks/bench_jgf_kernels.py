"""Java Grande kernels (section 5.1 discrepancy study).

Measures each JGF kernel in both roles; together with the modeled ratio
bands (see ``npb report``) this reproduces the paper's explanation of why
the Java Grande Group's Java-vs-Fortran numbers were so much more
favorable than the NPB's.
"""

import numpy as np
import pytest

from repro.jgf import (
    make_sparse_system,
    series_loops,
    series_numpy,
    sor_loops,
    sor_numpy,
    sparsematmult_loops,
    sparsematmult_numpy,
)

N_SERIES = 24
N_SOR = 120
N_SPARSE = 5000


@pytest.mark.parametrize("style,fn", [("numpy", series_numpy),
                                      ("loops", series_loops)])
def test_series(benchmark, style, fn):
    benchmark.extra_info["kernel"] = "series"
    benchmark.extra_info["style"] = style
    benchmark.pedantic(fn, args=(N_SERIES,), rounds=2, iterations=1)


@pytest.mark.parametrize("style,fn", [("numpy", sor_numpy),
                                      ("loops", sor_loops)])
def test_sor(benchmark, style, fn):
    grid = np.random.default_rng(7).random((N_SOR, N_SOR))
    benchmark.extra_info["kernel"] = "sor"
    benchmark.extra_info["style"] = style
    benchmark.pedantic(fn, args=(grid, 50), rounds=2, iterations=1)


@pytest.mark.parametrize("style,fn", [("numpy", sparsematmult_numpy),
                                      ("loops", sparsematmult_loops)])
def test_sparsematmult(benchmark, style, fn):
    system = make_sparse_system(N_SPARSE)
    benchmark.extra_info["kernel"] = "sparsematmult"
    benchmark.extra_info["style"] = style
    benchmark.pedantic(fn, args=system,
                       kwargs={"iterations": 50}, rounds=2, iterations=1)
