"""Verification result record shared by every benchmark.

Each NPB benchmark ends with a verification stage comparing computed
quantities (residual norms, checksums, eigenvalue estimates, sort order)
against published reference values with a per-benchmark epsilon.  The
Fortran codes print SUCCESSFUL/UNSUCCESSFUL; here the same information is
carried in a structured record so tests and the harness can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def within_epsilon(computed: float, reference: float, epsilon: float) -> bool:
    """NPB relative-error acceptance test.

    Matches the Fortran idiom ``abs((computed - reference)/reference) <= eps``
    with the division guarded when the reference is exactly zero.
    """
    if reference == 0.0:
        return abs(computed) <= epsilon
    return abs((computed - reference) / reference) <= epsilon


@dataclass
class VerificationResult:
    """Outcome of a benchmark's verification stage.

    Attributes
    ----------
    benchmark, problem_class :
        Identity of the run.
    verified :
        Overall pass/fail (the NPB "Verification Successful" line).
    checks :
        One entry per compared quantity: (name, computed, reference,
        relative_error, passed).  For benchmarks whose reference constants
        are not defined for a class, ``verified`` is False and ``checks``
        is empty with ``reason`` set.
    reason :
        Human-readable note when verification could not be performed.
    """

    benchmark: str
    problem_class: str
    verified: bool
    checks: list[tuple[str, float, float, float, bool]] = field(
        default_factory=list
    )
    reason: str = ""

    def add(self, name: str, computed: float, reference: float,
            epsilon: float) -> bool:
        """Record one comparison; returns whether it passed."""
        if reference == 0.0:
            err = abs(computed)
        else:
            err = abs((computed - reference) / reference)
        ok = within_epsilon(computed, reference, epsilon)
        self.checks.append((name, float(computed), float(reference), err, ok))
        if not ok:
            self.verified = False
        return ok

    def summary(self) -> str:
        status = "SUCCESSFUL" if self.verified else "UNSUCCESSFUL"
        lines = [
            f"{self.benchmark}.{self.problem_class} verification {status}"
        ]
        for name, computed, reference, err, ok in self.checks:
            flag = "ok " if ok else "FAIL"
            lines.append(
                f"  [{flag}] {name}: computed={computed: .15e} "
                f"reference={reference: .15e} rel.err={err:.3e}"
            )
        if self.reason:
            lines.append(f"  note: {self.reason}")
        return "\n".join(lines)
