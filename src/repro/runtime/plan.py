"""Memoized execution plans for slab dispatch.

Every ``parallel_for`` in the suite block-partitions ``range(n)`` over a
fixed worker count, and the hot iteration loops (25 CG steps per outer
iteration, one dispatch per LU wavefront, ...) repeat the same handful of
extents thousands of times.  An :class:`ExecutionPlan` computes each
partition once per ``(n, nworkers)`` and serves the cached bounds on every
later call, so partition arithmetic drops out of the dispatch hot path.
"""

from __future__ import annotations

from repro.runtime.partition import partition_bounds

#: Per-worker half-open bounds, rank order: ((lo_0, hi_0), (lo_1, hi_1), ...)
Bounds = tuple[tuple[int, int], ...]


class ExecutionPlan:
    """Block partitions for a fixed worker count, memoized by extent.

    The cache is unbounded by design: a benchmark run touches a bounded
    set of extents (grid dimensions, wavefront sizes), so entries are a
    few dozen tuples at most.  ``hits``/``misses`` expose the memoization
    behaviour to tests and to ``benchmarks/bench_dispatch_overhead.py``.
    """

    __slots__ = ("nworkers", "ranks", "_bounds", "hits", "misses",
                 "kernel_backend")

    def __init__(self, nworkers: int, kernel_backend: str = "fused"):
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.nworkers = nworkers
        #: selected kernel tier (see :mod:`repro.kernels.registry`); the
        #: Team validates and owns mutation, the plan just carries it so
        #: dispatch-time resolution reads one object
        self.kernel_backend = kernel_backend
        #: per-worker ``(rank, nworkers)`` pairs, the run_on_all "bounds"
        self.ranks: Bounds = tuple((r, nworkers) for r in range(nworkers))
        self._bounds: dict[int, Bounds] = {}
        self.hits = 0
        self.misses = 0

    def bounds(self, n: int) -> Bounds:
        """Per-worker slab bounds for ``range(n)``, cached per extent."""
        cached = self._bounds.get(n)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        cached = tuple(partition_bounds(n, self.nworkers, rank)
                       for rank in range(self.nworkers))
        self._bounds[n] = cached
        return cached

    def bounds_for(self, n: int, rank: int) -> tuple[int, int]:
        """One worker's slab of ``range(n)`` (via the shared cache)."""
        return self.bounds(n)[rank]

    def cache_info(self) -> dict[str, int]:
        """Memoization counters, for tests and overhead benchmarks."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._bounds)}
