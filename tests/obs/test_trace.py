"""W3C-traceparent propagation and the free-when-off activation gate."""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    TraceContext,
    current_trace,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    tracing_active,
    use_trace,
)


class TestTraceparent:
    def test_roundtrip(self):
        ctx = TraceContext(trace_id=new_trace_id(),
                           parent_span_id=new_span_id())
        parsed = parse_traceparent(format_traceparent(ctx))
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.parent_span_id == ctx.parent_span_id
        assert parsed.sampled is True

    def test_unsampled_flag_roundtrips(self):
        ctx = TraceContext(trace_id=new_trace_id(),
                           parent_span_id=new_span_id(), sampled=False)
        header = format_traceparent(ctx)
        assert header.endswith("-00")
        parsed = parse_traceparent(header)
        assert parsed.sampled is False

    def test_header_shape(self):
        ctx = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8)
        header = format_traceparent(ctx)
        version, trace_id, span_id, flags = header.split("-")
        assert (version, flags) == ("00", "01")
        assert len(trace_id) == 32 and len(span_id) == 16

    @pytest.mark.parametrize("bad", [
        None,
        "",
        "garbage",
        "00-short-abcdefabcdefabcd-01",
        "00-" + "g" * 32 + "-" + "ab" * 8 + "-01",   # non-hex trace id
        "00-" + "ab" * 16 + "-" + "gh" * 8 + "-01",  # non-hex span id
        "00-" + "0" * 32 + "-" + "ab" * 8 + "-01",   # all-zero trace id
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
        "00-" + "ab" * 16 + "-" + "ab" * 8,          # missing flags
        "0-" + "ab" * 16 + "-" + "ab" * 8 + "-01",   # short version
    ])
    def test_malformed_headers_are_dropped_not_raised(self, bad):
        assert parse_traceparent(bad) is None

    def test_ids_are_unique_and_well_sized(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 for i in ids)
        assert all(len(new_span_id()) == 16 for _ in range(8))


class TestContext:
    def test_child_keeps_trace_id_and_sampling(self):
        ctx = TraceContext(trace_id="ab" * 16, parent_span_id=None,
                           sampled=False)
        child = ctx.child("cd" * 8)
        assert child.trace_id == ctx.trace_id
        assert child.parent_span_id == "cd" * 8
        assert child.sampled is False

    def test_use_trace_sets_and_restores_ambient_context(self):
        assert current_trace() is None
        ctx = TraceContext(trace_id="ab" * 16, parent_span_id=None)
        with use_trace(ctx):
            assert current_trace() is ctx
            inner = TraceContext(trace_id="cd" * 16, parent_span_id=None)
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None

    def test_tracing_active_only_for_sampled_contexts(self):
        """The hot-path gate: no sampled context in scope means the
        dispatch loop must see tracing as off."""
        assert tracing_active() is False
        unsampled = TraceContext(trace_id="ab" * 16, parent_span_id=None,
                                 sampled=False)
        with use_trace(unsampled):
            assert tracing_active() is False
        sampled = TraceContext(trace_id="ab" * 16, parent_span_id=None)
        with use_trace(sampled):
            assert tracing_active() is True
        assert tracing_active() is False

    def test_use_trace_none_is_a_noop_scope(self):
        with use_trace(None):
            assert current_trace() is None
            assert tracing_active() is False
