"""Job model and admission queue for the benchmark job service.

A *job* is one benchmark run requested by a client.  Its :class:`JobSpec`
is a complete, content-addressable description of the work: what to run
(benchmark, class), how (backend, workers, fault-policy flags), and in
which world (git SHA, python/numpy versions).  Two specs with the same
:meth:`~JobSpec.fingerprint` are guaranteed to produce bit-identical
results -- every benchmark in the suite is deterministic and the backends
are bit-identical by construction (the equivalence suite enforces it) --
which is what makes the result cache (:mod:`repro.service.cache`) sound.

Jobs move through a small state machine, each transition stamped with a
wall-clock time::

    submitted -> queued -> running -> done | failed
                        \\-> cached              (fingerprint hit, no run)

:class:`JobQueue` is the admission point: FIFO within each priority lane
(``high`` drains before ``normal``), bounded total depth.  A full queue
rejects *explicitly* (:class:`AdmissionRejected`, surfaced as HTTP 429 /
CLI exit code 4) instead of buffering unboundedly -- backpressure is the
contract that keeps a saturated service honest with its clients.

Two identity notions coexist on a spec:

* :meth:`JobSpec.fingerprint` -- the *cache* key: every run-affecting
  field plus the environment pin (git SHA, python/numpy versions).
* :func:`routing_key` / :meth:`JobSpec.routing_key` -- the *placement*
  key used by the shard coordinator (:mod:`repro.service.shard`): the
  run-affecting fields only, computable from a raw submission payload
  without stamping the environment (no ``git rev-parse`` per request).
  Shards of one coordinator share an environment, so routing on this
  subset preserves cache locality across the fleet.

A :class:`Job` may additionally carry a client-supplied ``job_key``
(idempotency key).  Resubmitting the same key returns the already-admitted
job instead of a duplicate -- that is what lets the coordinator safely
resubmit after an ambiguous transport failure (the request may or may not
have been admitted before the connection died).
"""

from __future__ import annotations

import functools
import hashlib
import json
import platform
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.obs.trace import TraceContext
from repro.runtime.dispatch import FaultPolicy

#: Priority lanes in drain order.
PRIORITIES = ("high", "normal")

#: Every state a job can be in.  ``done``/``failed``/``cached`` are
#: terminal; ``cached`` means the result came from the content-addressed
#: cache without executing anything.
JOB_STATES = ("submitted", "queued", "running", "done", "failed", "cached")

_TERMINAL = frozenset({"done", "failed", "cached"})

#: The JobSpec fields a shard coordinator routes on: everything that
#: affects *what runs*, nothing that pins *where it was built* (the
#: environment fields are identical across the shards of one
#: coordinator, so hashing them would add nothing but a git subprocess
#: per request).
ROUTING_FIELDS = (
    "benchmark",
    "problem_class",
    "backend",
    "workers",
    "dispatch_timeout",
    "max_retries",
    "kernel_backend",
)


class AdmissionRejected(RuntimeError):
    """The service refused a submission (queue full or draining).

    Maps to HTTP 429 on the wire and exit code 4 in the CLI -- the
    client should back off and resubmit, not treat this as a crash.
    """

    def __init__(self, message: str, depth: int = 0, capacity: int = 0):
        super().__init__(message)
        self.depth = depth
        self.capacity = capacity


@functools.lru_cache(maxsize=1)
def _git_sha() -> str:
    # Reuse the bench fingerprint helper; import here so the service can
    # be used without the harness package fully importable.  Cached per
    # process: the tree cannot change under a running daemon, and paying
    # a `git rev-parse` subprocess on every submission would dominate
    # the async front end's admission latency.
    from repro.harness.bench import _git_sha as sha

    return sha()


def routing_key(payload: Mapping, default_kernel_backend: str = "fused") -> str:
    """Placement key of a raw submission payload (sha256 hex digest).

    Normalizes exactly the defaults :meth:`JobSpec.create` would apply,
    so a payload routes to the same shard its resulting spec would --
    without validating the payload or touching the environment.  Unknown
    payload keys (``wait``, ``priority``, ``no_cache``, ``job_key``,
    ``tenant``) are ignored: they do not change what runs.  The async
    front end (:mod:`repro.service.async_api`) reuses this key for its
    in-flight coalescing registry -- within one daemon the environment
    is fixed, so equal routing keys partition jobs exactly like equal
    fingerprints, and routing-key coalescing composes with shard
    placement (identical specs land on the same shard *and* coalesce
    there).
    """
    normalized = {
        "benchmark": str(payload.get("benchmark", "")).upper(),
        "problem_class": str(payload.get("problem_class") or "S").upper(),
        "backend": str(payload.get("backend") or "serial"),
        "workers": int(payload.get("workers") or 1),
        "dispatch_timeout": payload.get("dispatch_timeout"),
        "max_retries": payload.get("max_retries"),
        "kernel_backend": str(
            payload.get("kernel_backend") or default_kernel_backend
        ),
    }
    canonical = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """Content-addressable description of one benchmark run.

    All fields participate in the fingerprint: anything that could
    change the result (or the environment that produced it) must be
    part of the cache key, and nothing else -- submission-time knobs
    like priority or ``no_cache`` live on the :class:`Job` instead.
    """

    benchmark: str
    problem_class: str = "S"
    backend: str = "serial"
    workers: int = 1
    #: fault-policy knobs (None = FaultPolicy defaults); these are part
    #: of the fingerprint because a degraded-but-verified run and a
    #: clean run have different fault histories in their records
    dispatch_timeout: float | None = None
    max_retries: int | None = None
    #: kernel tier the run resolves kernels against -- fingerprint-
    #: affecting by construction: two tiers of the same cell are
    #: different results (that ratio *is* the language-gap study)
    kernel_backend: str = "fused"
    #: environment pin: results from another tree/interpreter/numpy are
    #: different cache entries by construction
    git_sha: str = "unknown"
    python_version: str = ""
    numpy_version: str = ""

    @classmethod
    def create(
        cls,
        benchmark: str,
        problem_class: str = "S",
        backend: str = "serial",
        workers: int = 1,
        dispatch_timeout: float | None = None,
        max_retries: int | None = None,
        kernel_backend: str = "fused",
    ) -> "JobSpec":
        """Validated spec with the environment pin stamped in."""
        from repro import available_benchmarks
        from repro.kernels.registry import validate_tier

        benchmark = str(benchmark).upper()
        problem_class = str(problem_class).upper()
        if benchmark not in available_benchmarks():
            raise ValueError(
                f"unknown benchmark {benchmark!r}; choose "
                f"from {available_benchmarks()}"
            )
        if backend not in ("serial", "threads", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        workers = int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return cls(
            benchmark=benchmark,
            problem_class=problem_class,
            backend=backend,
            workers=workers,
            dispatch_timeout=dispatch_timeout,
            max_retries=max_retries,
            kernel_backend=validate_tier(str(kernel_backend)),
            git_sha=_git_sha(),
            python_version=platform.python_version(),
            numpy_version=np.__version__,
        )

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "backend": self.backend,
            "workers": self.workers,
            "dispatch_timeout": self.dispatch_timeout,
            "max_retries": self.max_retries,
            "kernel_backend": self.kernel_backend,
            "git_sha": self.git_sha,
            "python_version": self.python_version,
            "numpy_version": self.numpy_version,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            **{k: payload[k] for k in cls.__dataclass_fields__ if k in payload}
        )

    def fingerprint(self) -> str:
        """Content address: sha256 over the canonical JSON of the spec."""
        canonical = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def routing_key(self) -> str:
        """Placement key (see module-level :func:`routing_key`)."""
        return routing_key({f: getattr(self, f) for f in ROUTING_FIELDS})

    def fault_policy(self) -> FaultPolicy | None:
        """The FaultPolicy this spec asks for (None = team default)."""
        if self.dispatch_timeout is None and self.max_retries is None:
            return None
        kwargs = {}
        if self.dispatch_timeout is not None:
            kwargs["dispatch_timeout"] = self.dispatch_timeout
        if self.max_retries is not None:
            kwargs["max_retries"] = self.max_retries
        return FaultPolicy(**kwargs)


@dataclass
class Job:
    """One tracked submission: spec + state machine + result."""

    job_id: str
    spec: JobSpec
    priority: str = "normal"
    #: bypass the result cache for this submission (the result is still
    #: stored, so a later submission can hit it)
    no_cache: bool = False
    #: client-supplied idempotency key: resubmitting the same key gives
    #: back this job instead of admitting a duplicate
    job_key: str | None = None
    #: tenant id the submitting request carried (schema v6); admission
    #: fairness groups by it, execution ignores it -- it is provenance,
    #: not part of the fingerprint
    tenant: str | None = None
    state: str = "submitted"
    submitted_at: float = field(default_factory=time.time)
    queued_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    #: the v4 run record (BenchmarkResult.to_dict() + service fields)
    result: dict | None = None
    error: str | None = None
    cache_hit: bool = False
    #: True when the job ran on a pre-spawned pool team, False for a
    #: cold one-shot team, None when it never ran (cached/failed early)
    pooled: bool | None = None
    #: trace context the submitting request carried (or the sampler
    #: minted); the scheduler activates it around execution.  None means
    #: the request predates tracing or sampling is off entirely.
    trace: TraceContext | None = None

    @property
    def trace_id(self) -> str | None:
        """Trace id when this job is actually being traced (sampled)."""
        if self.trace is not None and self.trace.sampled:
            return self.trace.trace_id
        return None

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    @property
    def queue_wait_seconds(self) -> float:
        """Seconds between admission and execution start.

        On a warm pooled team this is the *entire* pre-compute latency
        (spawn, plan, and arena warm-up are already paid), which is how
        the service makes the amortization visible in the record.
        """
        if self.queued_at is None:
            return 0.0
        if self.started_at is not None:
            end = self.started_at
        elif self.finished_at is not None:
            end = self.finished_at
        else:
            end = time.time()
        return max(0.0, end - self.queued_at)

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "fingerprint": self.spec.fingerprint(),
            "spec": self.spec.as_dict(),
            "priority": self.priority,
            "no_cache": self.no_cache,
            "job_key": self.job_key,
            "tenant": self.tenant,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "queued_at": self.queued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_seconds": self.queue_wait_seconds,
            "cache_hit": self.cache_hit,
            "pooled": self.pooled,
            "trace_id": self.trace_id,
            "error": self.error,
            "result": self.result,
        }


class JobQueue:
    """Bounded FIFO queue with priority lanes and explicit rejection.

    ``high`` drains before ``normal``; within a lane, strict FIFO.  The
    depth bound covers both lanes together: admission control is about
    total buffered work, not fairness between lanes.  ``close()`` starts
    the drain contract -- new puts are rejected, already-admitted jobs
    keep coming out of ``get`` until the queue is empty, after which
    ``get`` returns ``None`` to tell dispatchers to exit.
    """

    def __init__(self, maxdepth: int = 64):
        if maxdepth < 1:
            raise ValueError("maxdepth must be >= 1")
        self.maxdepth = maxdepth
        self._lanes: dict[str, deque[Job]] = {p: deque() for p in PRIORITIES}
        self._cond = threading.Condition()
        self._closed = False

    @property
    def depth(self) -> int:
        with self._cond:
            return sum(len(lane) for lane in self._lanes.values())

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, job: Job) -> None:
        """Admit one job (stamps ``queued``) or raise AdmissionRejected."""
        if job.priority not in self._lanes:
            raise ValueError(
                f"unknown priority {job.priority!r}; choose from {PRIORITIES}"
            )
        with self._cond:
            depth = sum(len(lane) for lane in self._lanes.values())
            if self._closed:
                raise AdmissionRejected(
                    "service is draining; not accepting new jobs",
                    depth=depth,
                    capacity=self.maxdepth,
                )
            if depth >= self.maxdepth:
                raise AdmissionRejected(
                    f"queue full ({depth}/{self.maxdepth}); "
                    f"back off and resubmit",
                    depth=depth,
                    capacity=self.maxdepth,
                )
            job.state = "queued"
            job.queued_at = time.time()
            self._lanes[job.priority].append(job)
            self._cond.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """Next job in priority order; None on timeout or drained-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                for priority in PRIORITIES:
                    lane = self._lanes[priority]
                    if lane:
                        return lane.popleft()
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if all(not lane for lane in self._lanes.values()):
                            return None

    def close(self) -> None:
        """Reject new admissions; wake every blocked ``get``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
