"""Software instruction counters: the perfex analogue.

The paper profiles the basic operations with SGI's ``perfex`` hardware
counters and concludes: (a) the Java/Fortran time ratio tracks the ratio
of executed instructions (about a factor of 10); (b) the Java code
executes twice as many floating-point instructions because the JIT does
not emit the fused multiply-add (madd).

We reproduce that analysis with analytic instruction counts for each
basic operation in each style.  The counting model:

* Fortran: fused madd counts as one FP instruction; array access on a
  linearized buffer is one load with strength-reduced addressing (the
  index arithmetic is folded into the addressing mode); no bounds checks.
* Java: multiply and add count separately (no madd); every array access
  performs a bounds check (one compare+branch) and explicit index
  arithmetic; object/loop overhead adds a constant per loop iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.basic_ops import ASSIGN_ITERS


@dataclass(frozen=True)
class InstructionProfile:
    """Instruction counts for one operation at one grid size."""

    fp_madd: int        # fused multiply-adds (Fortran only)
    fp_separate: int    # FP instructions when madd is unavailable
    loads: int
    stores: int
    index_ops: int      # explicit index arithmetic (interpreted styles)
    bounds_checks: int  # one per array access in the Java model
    loop_overhead: int  # per-iteration control instructions

    @property
    def fortran_instructions(self) -> int:
        """Total issued instructions in the Fortran model."""
        return (self.fp_madd + self.loads + self.stores
                + self.loop_overhead)

    @property
    def java_instructions(self) -> int:
        """Total issued instructions in the Java model.

        Per array access the JVM model pays an array-reference load, the
        full (un-strength-reduced) index computation, a bounds
        compare+branch, and the data access itself; FP operations are
        unfused and pay operand-stack traffic; loop control pays the
        interpretive/JIT overhead of the era's JVMs.
        """
        accesses = self.loads + self.stores
        return (2 * self.fp_separate          # FP op + stack traffic
                + 2 * accesses                # data access + array ref
                + self.index_ops              # explicit index arithmetic
                + 2 * self.bounds_checks      # compare + branch
                + 3 * self.loop_overhead)     # interpreted loop control

    @property
    def instruction_ratio(self) -> float:
        """Java/Fortran instruction ratio (paper: ~10 for basic ops)."""
        return self.java_instructions / max(1, self.fortran_instructions)

    @property
    def fp_ratio(self) -> float:
        """Java/Fortran FP instruction ratio (paper: ~2, no madd)."""
        return self.fp_separate / max(1, self.fp_madd)


def profile_operation(op: str, grid: tuple[int, int, int]) -> InstructionProfile:
    """Analytic instruction counts for one Table 1 operation."""
    nx, ny, nz = grid
    n = nx * ny * nz
    interior1 = max(0, (nx - 2)) * max(0, (ny - 2)) * max(0, (nz - 2))
    interior2 = max(0, (nx - 4)) * max(0, (ny - 4)) * max(0, (nz - 4))

    if op == "assignment":
        points = n * ASSIGN_ITERS
        return InstructionProfile(
            fp_madd=0, fp_separate=0,
            loads=points, stores=points,
            index_ops=2 * points, bounds_checks=2 * points,
            loop_overhead=points,
        )
    if op == "stencil1":
        # 7 loads, 1 store, 6 madd-able mul+adds + 1 mul per point.
        return InstructionProfile(
            fp_madd=7 * interior1,          # 6 madds + 1 mul
            fp_separate=13 * interior1,     # 7 muls + 6 adds
            loads=7 * interior1, stores=interior1,
            index_ops=14 * interior1, bounds_checks=8 * interior1,
            loop_overhead=interior1,
        )
    if op == "stencil2":
        return InstructionProfile(
            fp_madd=13 * interior2,         # 12 madds + 1 mul
            fp_separate=25 * interior2,     # 13 muls + 12 adds
            loads=13 * interior2, stores=interior2,
            index_ops=26 * interior2, bounds_checks=14 * interior2,
            loop_overhead=interior2,
        )
    if op == "matvec5":
        # 25 mul+add pairs per point, 5 stores, 30 loads.
        return InstructionProfile(
            fp_madd=25 * n,
            fp_separate=50 * n,
            loads=30 * n, stores=5 * n,
            index_ops=60 * n, bounds_checks=35 * n,
            loop_overhead=25 * n,
        )
    if op == "reduction":
        elems = 5 * n
        return InstructionProfile(
            fp_madd=elems,                 # adds only; madd irrelevant
            fp_separate=elems,
            loads=elems, stores=0,
            index_ops=elems, bounds_checks=elems,
            loop_overhead=elems,
        )
    raise ValueError(f"unknown operation {op!r}")
