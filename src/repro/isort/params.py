"""IS problem-class parameters and partial-verification constants (is.c)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class ISParams:
    """One row of the IS class table.

    ``total_keys_log2``/``max_key_log2`` size the key stream and key range;
    ``test_index``/``test_rank`` are the five spot-check positions and their
    published ranks; ``rank_adjust`` gives, for each spot check, the sign
    pattern of the per-iteration rank drift the verification expects
    (the class-specific ``switch`` in is.c's partial_verify).
    """

    total_keys_log2: int
    max_key_log2: int
    test_index: tuple[int, ...]
    test_rank: tuple[int, ...]
    #: (offset, sign) per test slot: expected rank is
    #: test_rank + sign*(iteration + offset)
    rank_adjust: tuple[tuple[int, int], ...]

    @property
    def num_keys(self) -> int:
        return 1 << self.total_keys_log2

    @property
    def max_key(self) -> int:
        return 1 << self.max_key_log2


#: Timed ranking iterations (MAX_ITERATIONS in is.c).
MAX_ITERATIONS = 10

#: Spot checks per iteration (TEST_ARRAY_SIZE in is.c).
TEST_ARRAY_SIZE = 5

#: LCG seed for key generation.
IS_SEED = 314159265


def _adjust(*signs_offsets) -> tuple[tuple[int, int], ...]:
    return tuple(signs_offsets)


IS_CLASSES: dict[ProblemClass, ISParams] = {
    # is.c class S: i<=2 -> rank+iteration, else rank-iteration
    ProblemClass.S: ISParams(
        16, 11,
        (48427, 17148, 23627, 62548, 4431),
        (0, 18, 346, 64917, 65463),
        _adjust((0, 1), (0, 1), (0, 1), (0, -1), (0, -1)),
    ),
    # class W: i<2 -> rank+(iteration-2), else rank-iteration
    ProblemClass.W: ISParams(
        20, 16,
        (357773, 934767, 875723, 898999, 404505),
        (1249, 11698, 1039987, 1043896, 1048018),
        _adjust((-2, 1), (-2, 1), (0, -1), (0, -1), (0, -1)),
    ),
    # class A: i<=2 -> rank+(iteration-1), else rank-(iteration-1)
    ProblemClass.A: ISParams(
        23, 19,
        (2112377, 662041, 5336171, 3642833, 4250760),
        (104, 17523, 123928, 8288932, 8388264),
        _adjust((-1, 1), (-1, 1), (-1, 1), (-1, -1), (-1, -1)),
    ),
    # class B: i==1,2,4 -> rank+iteration, else rank-iteration
    ProblemClass.B: ISParams(
        25, 21,
        (41869, 812306, 5102857, 18232239, 26860214),
        (33422937, 10244, 59149, 33135281, 99),
        _adjust((0, -1), (0, 1), (0, 1), (0, -1), (0, 1)),
    ),
    # class C: i<=2 -> rank+iteration, else rank-iteration
    ProblemClass.C: ISParams(
        27, 23,
        (44172927, 72999161, 74326391, 129606274, 21736814),
        (61147, 882988, 266290, 133997595, 133525895),
        _adjust((0, 1), (0, 1), (0, 1), (0, -1), (0, -1)),
    ),
}


def is_params(problem_class) -> ISParams:
    return lookup_class(IS_CLASSES, problem_class, "IS")
