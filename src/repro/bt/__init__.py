"""BT: Block Tridiagonal simulated CFD application.

ADI approximate factorization of the implicit 3-D compressible
Navier-Stokes operator into x, y, z factors; each factor couples the five
conserved variables, giving block-tridiagonal systems of 5x5 blocks along
every grid line, solved by block Thomas elimination without pivoting.

BT is the largest code in the suite and the headline entry of the paper's
structured-grid group; its inner kernel is exactly the "matrix-vector
multiplication of 3-D arrays of 5x5 matrices and 5-D vectors" basic
operation of Table 1.
"""

from repro.bt.benchmark import BT
from repro.bt.params import BT_CLASSES, BTParams

__all__ = ["BT", "BTParams", "BT_CLASSES"]
