"""Tests for the NPB 46-bit LCG (repro.common.randdp)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.randdp import (
    A_DEFAULT,
    R46_INV,
    Randlc,
    ipow46,
    randlc,
    vranlc,
)

MOD = 1 << 46


def _reference_sequence(seed: int, n: int, a: int = A_DEFAULT) -> list[int]:
    """Big-integer reference implementation of the recurrence."""
    states = []
    x = seed
    for _ in range(n):
        x = (a * x) % MOD
        states.append(x)
    return states


class TestRandlc:
    def test_matches_big_integer_reference(self):
        states = _reference_sequence(314159265, 50)
        x = 314159265
        for expected in states:
            value, x = randlc(x)
            assert x == expected
            assert value == expected * R46_INV

    def test_known_first_value(self):
        # 5**13 * 314159265 mod 2**46, computed independently.
        expected = (1220703125 * 314159265) % MOD
        value, state = randlc(314159265)
        assert state == expected

    def test_values_in_unit_interval(self):
        x = 271828183
        for _ in range(1000):
            value, x = randlc(x)
            assert 0.0 < value < 1.0

    @given(st.integers(min_value=1, max_value=MOD - 1),
           st.integers(min_value=1, max_value=MOD - 1))
    def test_exactness_random_operands(self, seed, a):
        value, state = randlc(seed, a)
        assert state == (a * seed) % MOD


class TestVranlc:
    def test_matches_scalar_randlc(self):
        batch, final = vranlc(200, 314159265)
        x = 314159265
        for i in range(200):
            value, x = randlc(x)
            assert batch[i] == value
        assert final == x

    def test_empty_batch(self):
        batch, state = vranlc(0, 12345)
        assert len(batch) == 0
        assert state == 12345

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vranlc(-1, 1)

    def test_split_batches_equal_one_batch(self):
        full, state_full = vranlc(1000, 271828183)
        first, mid = vranlc(300, 271828183)
        second, state_split = vranlc(700, mid)
        assert np.array_equal(full, np.concatenate([first, second]))
        assert state_full == state_split

    @given(st.integers(min_value=1, max_value=MOD - 1),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=30)
    def test_final_state_is_jump(self, seed, n):
        _, state = vranlc(n, seed)
        assert state == (pow(A_DEFAULT, n, MOD) * seed) % MOD


class TestIpow46:
    def test_matches_pow(self):
        for exponent in (0, 1, 2, 17, 12345, 1 << 30):
            assert ipow46(A_DEFAULT, exponent) == pow(A_DEFAULT, exponent,
                                                      MOD)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ipow46(A_DEFAULT, -1)

    @given(st.integers(min_value=0, max_value=1 << 40))
    @settings(max_examples=30)
    def test_property_vs_pow(self, exponent):
        assert ipow46(A_DEFAULT, exponent) == pow(A_DEFAULT, exponent, MOD)


class TestRandlcObject:
    def test_next_and_batch_interleave(self):
        a = Randlc(314159265)
        b = Randlc(314159265)
        seq_a = [a.next() for _ in range(10)]
        seq_b = list(b.batch(10))
        assert seq_a == seq_b

    def test_skip_equals_generate(self):
        a = Randlc(271828183)
        b = Randlc(271828183)
        a.batch(1234)
        b.skip(1234)
        assert a.state == b.state

    def test_copy_is_independent(self):
        a = Randlc(99)
        clone = a.copy()
        a.next()
        assert clone.state == 99

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            Randlc(-1)
        with pytest.raises(ValueError):
            Randlc(MOD)

    def test_full_period_behaviour_spot_check(self):
        # The generator has period 2**44 for odd seeds; consecutive states
        # must therefore never repeat in any practical window.
        rng = Randlc(314159265)
        states = set()
        for _ in range(10_000):
            rng.next()
            assert rng.state not in states
            states.add(rng.state)
