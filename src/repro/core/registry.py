"""Name-based benchmark registry.

Benchmark packages register their class at import time; the harness looks
them up by mnemonic.  Import of the benchmark packages is deferred to first
lookup so that ``import repro`` stays cheap.
"""

from __future__ import annotations

from importlib import import_module
from typing import Type

from repro.core.benchmark import NPBenchmark

_REGISTRY: dict[str, Type[NPBenchmark]] = {}

#: mnemonic -> module that defines (and registers) it
_PROVIDERS = {
    "BT": "repro.bt",
    "SP": "repro.sp",
    "LU": "repro.lu",
    "FT": "repro.ft",
    "MG": "repro.mg",
    "CG": "repro.cg",
    "IS": "repro.isort",
    "EP": "repro.ep",
}


def register(cls: Type[NPBenchmark]) -> Type[NPBenchmark]:
    """Class decorator: add a benchmark to the registry under its name."""
    mnemonic = cls.name.upper()
    _REGISTRY[mnemonic] = cls
    return cls


def get_benchmark(name: str) -> Type[NPBenchmark]:
    """Look a benchmark class up by mnemonic (case-insensitive)."""
    mnemonic = name.upper()
    if mnemonic not in _REGISTRY:
        provider = _PROVIDERS.get(mnemonic)
        if provider is None:
            raise KeyError(
                f"unknown benchmark {name!r}; known: {sorted(_PROVIDERS)}"
            )
        import_module(provider)
    return _REGISTRY[mnemonic]


def available_benchmarks() -> list[str]:
    """All benchmark mnemonics, in the paper's table order."""
    return ["BT", "SP", "LU", "FT", "IS", "CG", "MG", "EP"]
