"""Timing statistics shared by the bench trajectory and pytest-benchmark.

The NPB tradition (and the source paper's methodology) reports the *best*
of k repeats: the minimum is the run least perturbed by the OS, and on an
otherwise idle machine it converges to the true cost of the code.  The
median-absolute-deviation (MAD) of the repeats is kept alongside as the
noise bar -- unlike the standard deviation it is robust to the occasional
descheduled outlier that shared CI runners produce.

Everything that times code in this repository (``npb bench`` cells, the
``benchmarks/`` pytest-benchmark modules) summarizes its repeats through
:func:`summarize`, so records from both paths carry the same fields and
the regression comparator can reason about either.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (no numpy needed on this path)."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of an empty sequence")
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Matches numpy's default (``linear``) interpolation so latency
    percentiles reported by the load generator agree with any offline
    numpy analysis of the same trace -- without pulling numpy onto this
    dependency-free path.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass(frozen=True)
class TimingSummary:
    """Min-of-k timing of one measured cell, with a robust noise bar."""

    times: tuple[float, ...]
    best: float
    median: float
    mad: float

    @property
    def repeats(self) -> int:
        return len(self.times)

    def as_dict(self) -> dict:
        """The timing fields of a ``BENCH_*.json`` cell."""
        return {
            "repeats": self.repeats,
            "times_seconds": list(self.times),
            "best_seconds": self.best,
            "median_seconds": self.median,
            "mad_seconds": self.mad,
        }


def summarize(times: Iterable[float]) -> TimingSummary:
    """Summarize one cell's repeat times (min-of-k + median + MAD)."""
    ordered = tuple(float(t) for t in times)
    if not ordered:
        raise ValueError("summarize() needs at least one timing")
    mid = median(ordered)
    return TimingSummary(
        times=ordered,
        best=min(ordered),
        median=mid,
        mad=mad(ordered, center=mid),
    )


def time_callable(
    fn: Callable[[], object],
    repeat: int = 1,
    setup: Callable[[], object] | None = None,
) -> TimingSummary:
    """Time ``fn`` ``repeat`` times (running ``setup`` untimed before each)."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    times = []
    for _ in range(repeat):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return summarize(times)
