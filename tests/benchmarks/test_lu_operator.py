"""Tests for the LU spatial operator and setup routines."""

import numpy as np
import pytest

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import exact_field
from repro.lu.operator import apply_operator_slab, rhs_slab
from repro.lu.setup import setbv, setiv
from repro.team.partition import block_partition


@pytest.fixture(scope="module")
def constants():
    return CFDConstants(12, 12, 12, 0.5)


class TestOperatorInvariants:
    def test_residual_of_exact_field_vanishes(self, constants):
        """erhs builds frct = OP(exact); rhs computes OP(u) - frct, so at
        u = exact the residual must vanish identically."""
        c = constants
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        frct = np.zeros(ue.shape)
        apply_operator_slab(0, c.nz - 2, ue, frct, c)
        rsd = np.empty(ue.shape)
        rhs_slab(0, c.nz - 2, ue, rsd, frct, c)
        assert np.abs(rsd[1:-1, 1:-1, 1:-1]).max() < 1e-13

    def test_slab_splitting_invariance(self, constants):
        c = constants
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        u = ue * (1.0 + 0.01 * np.sin(np.arange(ue.size).reshape(ue.shape)))
        frct = np.zeros(u.shape)
        apply_operator_slab(0, c.nz - 2, ue, frct, c)

        reference = np.empty(u.shape)
        rhs_slab(0, c.nz - 2, u, reference, frct, c)
        for nslabs in (2, 3, 5):
            out = np.empty(u.shape)
            for lo, hi in block_partition(c.nz - 2, nslabs):
                rhs_slab(lo, hi, u, out, frct, c)
            assert np.array_equal(out, reference)

    def test_operator_accumulates(self, constants):
        """apply_operator_slab adds into ``out``; calling twice doubles
        the contribution."""
        c = constants
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        once = np.zeros(ue.shape)
        apply_operator_slab(0, c.nz - 2, ue, once, c)
        twice = np.zeros(ue.shape)
        apply_operator_slab(0, c.nz - 2, ue, twice, c)
        apply_operator_slab(0, c.nz - 2, ue, twice, c)
        assert np.allclose(twice[1:-1, 1:-1, 1:-1],
                           2 * once[1:-1, 1:-1, 1:-1], atol=1e-12)


class TestSetup:
    def test_setbv_faces_are_exact(self, constants):
        c = constants
        u = np.zeros((c.nz, c.ny, c.nx, 5))
        setbv(u, c)
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        assert np.array_equal(u[0], ue[0])
        assert np.array_equal(u[:, :, -1], ue[:, :, -1])
        # interior untouched
        assert np.all(u[1:-1, 1:-1, 1:-1] == 0)

    def test_setiv_writes_interior_only(self, constants):
        c = constants
        u = np.full((c.nz, c.ny, c.nx, 5), -7.0)
        setiv(u, c)
        assert np.all(u[0] == -7.0)
        assert np.all(u[:, 0] == -7.0)
        assert np.all(u[1:-1, 1:-1, 1:-1] != -7.0)

    def test_setiv_density_positive(self, constants):
        c = constants
        u = np.zeros((c.nz, c.ny, c.nx, 5))
        setbv(u, c)
        setiv(u, c)
        assert u[..., 0].min() > 0
